open Nezha_engine
open Nezha_fabric
open Nezha_tables
open Nezha_vswitch

type config = {
  report_interval : float;
  offload_threshold : float;
  scale_threshold : float;
  safe_level : float;
  overload_level : float;
  initial_fes : int;
  min_fes : int;
  learning_interval : float;
  rtt : float;
  rpc : Rpc_policy.t;
  push_bytes_per_s : float;
  ping_interval : float;
  ping_misses_to_fail : int;
  fe_cpu_max : float;
  fe_mem_max : float;
  auto_offload : bool;
  auto_scale : bool;
  auto_fallback : bool;
  fallback_idle_ticks : int;
  placement : Placement.policy;
  ewma_alpha : float;
  fe_pressure_weight : float;
  slo : Slo.config option;
}

let default_config =
  {
    report_interval = 1.0;
    offload_threshold = 0.70;
    scale_threshold = 0.40;
    safe_level = 0.40;
    overload_level = 0.95;
    initial_fes = 4;
    min_fes = 4;
    learning_interval = 0.2;
    rtt = 0.0005;
    rpc = Rpc_policy.default;
    push_bytes_per_s = 200e6;
    ping_interval = 0.5;
    ping_misses_to_fail = 3;
    fe_cpu_max = 0.30;
    fe_mem_max = 0.50;
    auto_offload = true;
    auto_scale = true;
    auto_fallback = false;
    fallback_idle_ticks = 5;
    placement = Placement.Least_loaded;
    ewma_alpha = 0.3;
    fe_pressure_weight = 0.05;
    slo = None;
  }

type offload = {
  key : int * int; (* (original be_server, vnic id) *)
  mutable be_server : Topology.server_id;
  vnic : Vnic.t;
  vni : int;
  saved_ruleset : Ruleset.t;
  triggered_at : float;
  mutable be : Be.t option;
  mutable fe_servers : Topology.server_id list;
  mutable completed_at : float option;
  mutable active : bool;
  mutable falling_back : bool;
  mutable repairing : bool;
      (* divergence detected (crash, lost config) and repair in
         progress — part of the conservation invariant *)
  mutable idle_ticks : int;
}

(* The collected BE re-advertisements plus the node-side FE service
   handles — what a standby controller rebuilds its world from after a
   takeover.  Conceptually this is state the *nodes* own (each BE
   re-advertises (vnic, vni, FE set, saved tables) on boot and on
   change; each FE service lives on its node): the registry is the
   rendezvous both controllers of an HA pair share, not controller
   memory — which is exactly why a primary crash cannot lose it. *)
module Registry = struct
  type entry = {
    mutable r_be_server : Topology.server_id;
    r_vnic : Vnic.t;
    r_vni : int;
    r_ruleset : Ruleset.t;
    mutable r_fe_servers : Topology.server_id list;
    mutable r_be : Be.t option;
  }

  type t = {
    offloads : (int * int, entry) Hashtbl.t;
    fes : (int, Fe.t) Hashtbl.t;
  }

  let create () = { offloads = Hashtbl.create 16; fes = Hashtbl.create 32 }
  let entries t = Hashtbl.length t.offloads
end

type t = {
  sim : Sim.t;
  fabric : Fabric.t;
  cfg : config;
  rng : Rng.t;
  mutable fe_services : (int, Fe.t) Hashtbl.t;
  offload_tbl : (int * int, offload) Hashtbl.t;
  mutable offload_order : offload list; (* newest first *)
  reports : (int, float * float) Hashtbl.t;
  slow_prev : (int * int, int) Hashtbl.t;
  remote_prev : (int, int) Hashtbl.t;
  busy_prev : (int, float) Hashtbl.t;
  monitor : Monitor.t;
  completion_ms : Stats.Histogram.t;
  overloads : (int, int) Hashtbl.t;
  last_scaled : (int * int, float) Hashtbl.t;
  scaled_in_until : (int, float) Hashtbl.t;
  mutable offload_events : int;
  mutable scale_out_events : int;
  mutable fes_provisioned : int;
  mutable rpc_attempts : int;
  mutable rpc_retries : int;
  mutable rpc_failures : int;
  mutable started : bool;
  mutable alive : bool;
      (* controller-process liveness: halted controllers apply nothing
         and their in-flight RPC continuations die on arrival *)
  mutable epoch : int;
      (* fencing token presented with every command (DESIGN.md §13) *)
  mutable registry : Registry.t option;
  mutable fenced_rejected : int;
  mutable stale_discards : int;
  mutable reconciles : int;
  mutable repairs : int;
  mutable telemetry : Nezha_telemetry.Telemetry.t option;
      (* propagated to FE services and BEs created after registration *)
  load_ewma : (Topology.server_id, Placement.Ewma.t) Hashtbl.t;
      (* smoothed reported CPU per server — the p2c load signal *)
  slo_state : Slo.t option;
  mutable slo_pool : int; (* distinct FE servers at the last SLO tick *)
}

let config t = t.cfg
let fabric t = t.fabric
let monitor t = t.monitor

(* Control-plane RPC latency: median [rpc.latency] with a log-normal
   tail, which is what produces Table 4's P999/median spread. *)
let rpc t = t.cfg.rpc.Rpc_policy.latency *. Rng.lognormal t.rng ~mu:0.0 ~sigma:0.6

(* One controller→server RPC over the (possibly impaired) management
   path.  Delivery is decided by the fault plane; a lost attempt retries
   after a capped exponential backoff.  [k true] runs after the delivered
   attempt's latency; [k false] once retries are exhausted.  Without a
   fault plane this is exactly a [rpc t] delay — one rng draw.

   Every RPC is stamped with the target's incarnation at send time: if
   the node crashed (and possibly rebooted) while the exchange was in
   flight, the arriving reply belongs to a process that no longer
   exists and is discarded as stale — the continuation sees failure,
   never a ghost ack.  A halted controller's continuations are dropped
   outright (its process died with them). *)
let rpc_to t server k =
  let faults = Fabric.faults t.fabric in
  let inc0 = match faults with Some f -> Faults.incarnation f server | None -> 0 in
  let k ok =
    if t.alive then begin
      match faults with
      | Some f when Faults.incarnation f server <> inc0 ->
        t.stale_discards <- t.stale_discards + 1;
        k false
      | Some f when ok && Faults.is_crashed f server ->
        (* vSwitch-only crash: the link is up but nobody is home. *)
        t.stale_discards <- t.stale_discards + 1;
        k false
      | Some _ | None -> k ok
    end
  in
  let delivered () =
    match Fabric.faults t.fabric with
    | None -> true
    | Some f -> (
      match Faults.consult f ~src:Faults.Gateway ~dst:(Faults.Server server) with
      | Faults.Drop -> false
      | Faults.Pass | Faults.Delay _ | Faults.Duplicate _ -> true)
  in
  let rec attempt n =
    t.rpc_attempts <- t.rpc_attempts + 1;
    if delivered () then
      ignore (Sim.schedule t.sim ~delay:(rpc t) (fun _ -> k true) : Sim.handle)
    else if n >= t.cfg.rpc.Rpc_policy.max_retries then begin
      t.rpc_failures <- t.rpc_failures + 1;
      ignore
        (Sim.schedule t.sim ~delay:t.cfg.rpc.Rpc_policy.timeout (fun _ -> k false)
          : Sim.handle)
    end
    else begin
      t.rpc_retries <- t.rpc_retries + 1;
      let backoff = Rpc_policy.retry_delay t.cfg.rpc ~attempt:n in
      ignore (Sim.schedule t.sim ~delay:backoff (fun _ -> attempt (n + 1)) : Sim.handle)
    end
  in
  attempt 0

let servers_with_vswitch t =
  List.filter
    (fun s -> Fabric.vswitch_opt t.fabric s <> None)
    (Topology.servers (Fabric.topology t.fabric))

let utilization_of t s =
  match Hashtbl.find_opt t.reports s with
  | Some (cpu, mem) -> (cpu, mem)
  | None -> (
    match Fabric.vswitch_opt t.fabric s with
    | Some vs ->
      let nic = Vswitch.nic vs in
      (Smartnic.peek_utilization nic ~window:t.cfg.report_interval, Smartnic.mem_utilization nic)
    | None -> (1.0, 1.0))

let last_cpu t s = fst (utilization_of t s)
let last_mem t s = snd (utilization_of t s)

(* The live load signal for power-of-two-choices placement: smoothed
   reported CPU plus a pressure term for offloads already steering at
   this server — a freshly-picked FE's CPU lags the decision by a
   report interval, so raw reports alone herd every placement onto the
   same momentarily-idle server. *)
let load_signal t s =
  let base =
    match Hashtbl.find_opt t.load_ewma s with
    | Some e -> Placement.Ewma.value e
    | None -> last_cpu t s
  in
  let pressure =
    match Hashtbl.find_opt t.fe_services s with
    | Some fe -> t.cfg.fe_pressure_weight *. float_of_int (Fe.served_count fe)
    | None -> 0.0
  in
  base +. pressure

let fe_service t s = Hashtbl.find_opt t.fe_services s

let fe_service_ensure t s =
  match Hashtbl.find_opt t.fe_services s with
  | Some fe -> fe
  | None ->
    let fe = Fe.install (Fabric.vswitch t.fabric s) in
    Hashtbl.replace t.fe_services s fe;
    (match t.telemetry with Some reg -> Fe.register_telemetry fe reg | None -> ());
    fe

let install_be t ~vs ~vnic ~vni ~fes ~fallback_ruleset =
  let be = Be.install ~vs ~vnic ~vni ~fes ?fallback_ruleset () in
  (match t.telemetry with Some reg -> Be.register_telemetry be reg | None -> ());
  be

(* ------------------------------------------------------------------ *)
(* Epoch fencing (DESIGN.md §13).  Every command that mutates dataplane
   or routing state first presents this controller's epoch to the
   touched component; a refusal means a newer primary exists and the
   command must be dropped on the floor — a revived stale primary is
   thereby provably unable to flap placements. *)

let fence_refused t =
  t.fenced_rejected <- t.fenced_rejected + 1;
  false

let fenced t server =
  (t.alive
  &&
  match Fabric.vswitch_opt t.fabric server with
  | Some vs -> Vswitch.observe_epoch vs ~epoch:t.epoch
  | None -> true)
  || fence_refused t

let fence_gateway t =
  (t.alive && Gateway.observe_epoch (Fabric.gateway t.fabric) ~epoch:t.epoch)
  || fence_refused t

(* Mirror an offload's intent into the shared registry (modelling the
   involved nodes' re-advertisements).  Called only after a fenced
   command applied, so a stale primary never pollutes it. *)
let registry_sync t o =
  match t.registry with
  | None -> ()
  | Some reg ->
    if o.active then begin
      match Hashtbl.find_opt reg.Registry.offloads o.key with
      | Some e ->
        e.Registry.r_be_server <- o.be_server;
        e.Registry.r_fe_servers <- o.fe_servers;
        e.Registry.r_be <- o.be
      | None ->
        Hashtbl.replace reg.Registry.offloads o.key
          {
            Registry.r_be_server = o.be_server;
            r_vnic = o.vnic;
            r_vni = o.vni;
            r_ruleset = o.saved_ruleset;
            r_fe_servers = o.fe_servers;
            r_be = o.be;
          }
    end
    else Hashtbl.remove reg.Registry.offloads o.key

(* ------------------------------------------------------------------ *)
(* FE candidate selection (§4.2.1, App. B.1): idle vSwitches, same ToR
   as the BE first, then the wider pool; similar load preferred. *)

let select_fe_candidates ?(version_filter = fun _ -> true) t ~be_server ~exclude ~count =
  let topo = Fabric.topology t.fabric in
  let eligible s =
    s <> be_server
    && (not (List.mem s exclude))
    && (match Fabric.vswitch_opt t.fabric s with
       (* A crashed SmartNIC reports zero utilization; never pick it. *)
       | Some vs ->
         (not (Smartnic.is_crashed (Vswitch.nic vs)))
         && version_filter (Vswitch.software_version vs)
         (* A server that just evicted its FEs needs its resources for
            local traffic; leave it alone for a while. *)
         && (match Hashtbl.find_opt t.scaled_in_until s with
            | Some until -> Sim.now t.sim >= until
            | None -> true)
       | None -> false)
    &&
    let cpu, mem = utilization_of t s in
    cpu <= t.cfg.fe_cpu_max && mem <= t.cfg.fe_mem_max
  in
  let same_rack s = Topology.same_rack topo s be_server in
  let servers = servers_with_vswitch t in
  match t.cfg.placement with
  | Placement.Least_loaded ->
    Placement.select ~eligible ~same_rack ~cpu:(last_cpu t) ~count servers
  | Placement.Power_of_two ->
    Placement.select_p2c ~rng:t.rng ~eligible ~same_rack ~load:(load_signal t)
      ~suspect:(fun s -> Monitor.is_suspect t.monitor ~key:s)
      ~count servers

(* ------------------------------------------------------------------ *)
(* vNIC-server learning: after the gateway entry changes, every vSwitch
   holding a mapping for this overlay address refreshes it within the
   200 ms learning interval (§4.2.1).  Returns the slowest learner's
   delay, which bounds "all traffic flows through the new targets". *)

let propagate_learning t ~addr ~targets =
  let max_delay = ref 0.0 in
  List.iter
    (fun s ->
      match Fabric.vswitch_opt t.fabric s with
      | None -> ()
      | Some vs ->
        List.iter
          (fun vid ->
            match Vswitch.ruleset vs vid with
            | None -> ()
            | Some rs -> (
              match Ruleset.find_mapping rs addr with
              | None -> ()
              | Some current ->
                if current <> targets then begin
                  let delay = Rng.float t.rng t.cfg.learning_interval in
                  if delay > !max_delay then max_delay := delay;
                  ignore
                    (Sim.schedule t.sim ~delay (fun _ ->
                         Ruleset.set_mapping_multi rs addr targets;
                         ignore (Vswitch.sync_rule_memory vs vid : Admission.t))
                      : Sim.handle)
                end))
          (Vswitch.vnic_ids vs))
    (servers_with_vswitch t);
  !max_delay

let fe_ips t servers =
  Array.of_list
    (List.map (fun s -> Topology.underlay_ip (Fabric.topology t.fabric) s) servers)

let update_routing t o =
  if not (fence_gateway t) then 0.0
  else begin
    let addr = Vnic.addr o.vnic in
    let targets = fe_ips t o.fe_servers in
    Gateway.set_route (Fabric.gateway t.fabric) addr targets;
    (match o.be with Some be -> Be.set_fes be targets | None -> ());
    registry_sync t o;
    propagate_learning t ~addr ~targets
  end

(* ------------------------------------------------------------------ *)
(* Fallback (§4.2.2) *)

let fallback_vnic t o =
  if not o.active then Error "offload not active"
  else if o.falling_back then Error "fallback already in progress"
  else if not (fenced t o.be_server) then Error "fenced: stale controller epoch"
  else begin
    match Fabric.vswitch_opt t.fabric o.be_server with
    | None -> Error "BE server vanished"
    | Some vs -> (
      let restored =
        (* During the dual-running stage the local tables still exist. *)
        match Vswitch.ruleset vs o.vnic.Vnic.id with
        | Some _ -> Admission.ok
        | None -> Vswitch.restore_ruleset vs o.vnic.Vnic.id o.saved_ruleset
      in
      match restored with
      | Error _ -> Error "BE lacks memory to restore rule tables"
      | Ok () ->
        o.falling_back <- true;
        (match o.be with Some be -> Be.set_stage be Be.Dual | None -> ());
        let addr = Vnic.addr o.vnic in
        let be_ip = [| Topology.underlay_ip (Fabric.topology t.fabric) o.be_server |] in
        if fence_gateway t then Gateway.set_route (Fabric.gateway t.fabric) addr be_ip;
        ignore (propagate_learning t ~addr ~targets:be_ip : float);
        ignore
          (Sim.schedule t.sim ~delay:(t.cfg.learning_interval +. t.cfg.rtt) (fun _ ->
               if t.alive then begin
                 (match o.be with Some be -> Be.uninstall be | None -> ());
                 List.iter
                   (fun s ->
                     match Hashtbl.find_opt t.fe_services s with
                     | Some fe -> Fe.unserve fe addr
                     | None -> ())
                   o.fe_servers;
                 o.active <- false;
                 Hashtbl.remove t.offload_tbl o.key;
                 registry_sync t o
               end)
            : Sim.handle);
        Ok ())
  end

(* ------------------------------------------------------------------ *)
(* Failover (§4.4) and monitor wiring *)

let rec watch_fe_host t s =
  match Fabric.vswitch_opt t.fabric s with
  | None -> ()
  | Some _ ->
    (* The health check is a real round-trip over the fabric: loss and
       partitions produce genuinely missed probes (§4.4, §C.2). *)
    Monitor.watch_probe t.monitor ~key:s
      ~probe:(fun ~reply -> Fabric.ping t.fabric ~dst:s ~reply)
      ~on_fail:(fun ~key -> failover t key)

and failover t dead_server =
  (match (if t.alive then Hashtbl.find_opt t.fe_services dead_server else None) with
  | None -> ()
  | Some fe ->
    let served = Fe.served_vnics fe in
    List.iter
      (fun addr ->
        (* Unserve *before* re-provisioning: scale_out below is free to
           re-pick this very server once it heals, and a later unserve
           would silently wipe that fresh configuration while the join
           RPC still adds it to the routing — a blackhole. *)
        Fe.unserve fe addr;
        let victims =
          Hashtbl.fold
            (fun _ o acc ->
              if o.active && Vnic.Addr.equal (Vnic.addr o.vnic) addr then o :: acc else acc)
            t.offload_tbl []
        in
        List.iter
          (fun o ->
            o.fe_servers <- List.filter (fun s -> s <> dead_server) o.fe_servers;
            (* An empty target set cannot be routed (and Gateway.set_route
               rejects it); the fallback below handles that case. *)
            if o.fe_servers <> [] then ignore (update_routing t o : float);
            let missing = t.cfg.min_fes - List.length o.fe_servers in
            let added =
              if missing > 0 then scale_out t ~avoid:[ dead_server ] o ~add:missing else 0
            in
            (* Every FE gone and no replacement available: restore local
               serving rather than blackhole the vNIC. *)
            if o.fe_servers = [] && added = 0 then
              ignore (fallback_vnic t o : (unit, string) result))
          victims)
      served)

(* ------------------------------------------------------------------ *)
(* Scale-out (§4.3) *)

and scale_out t ?(avoid = []) o ~add =
  if add <= 0 || not o.active then 0
  else if not (fenced t o.be_server) then 0
  else begin
    let candidates =
      select_fe_candidates t ~be_server:o.be_server
        ~exclude:(avoid @ o.fe_servers) ~count:add
    in
    let configured = ref [] in
    List.iter
      (fun s ->
        let fe = fe_service_ensure t s in
        let replica = Ruleset.clone o.saved_ruleset in
        match
          Fe.serve fe ~vnic:o.vnic ~ruleset:replica
            ~be:(Topology.underlay_ip (Fabric.topology t.fabric) o.be_server)
        with
        | Ok () ->
          configured := s :: !configured;
          watch_fe_host t s
        | Error _ -> ())
      candidates;
    let added = List.length !configured in
    if added > 0 then begin
      t.scale_out_events <- t.scale_out_events + 1;
      t.fes_provisioned <- t.fes_provisioned + added;
      (* Config push happens in the background; each new FE joins the
         routing after its push RPC lands (with retries under faults) —
         FEs whose config RPC ultimately fails never join. *)
      let push_time =
        float_of_int (Ruleset.memory_bytes o.saved_ruleset) /. t.cfg.push_bytes_per_s
      in
      let joined = ref [] in
      let remaining = ref added in
      List.iter
        (fun s ->
          rpc_to t s (fun ok ->
              ignore
                (Sim.schedule t.sim ~delay:push_time (fun _ ->
                     if ok then joined := s :: !joined;
                     decr remaining;
                     if !remaining = 0 && o.active && !joined <> [] then begin
                       o.fe_servers <- o.fe_servers @ List.rev !joined;
                       ignore (update_routing t o : float)
                     end)
                  : Sim.handle)))
        (List.rev !configured)
    end;
    added
  end

(* ------------------------------------------------------------------ *)
(* Offload (§4.2.1) *)

let find_offload t ~server ~vnic =
  Hashtbl.find_opt t.offload_tbl (server, Vnic.id_to_int vnic)

let offload_vnic t ~server ~vnic ?num_fes ?version_filter () =
  let num_fes = Option.value num_fes ~default:t.cfg.initial_fes in
  match Fabric.vswitch_opt t.fabric server with
  | None -> Error "no vSwitch on this server"
  | Some _ when not (fenced t server) -> Error "fenced: stale controller epoch"
  | Some vs -> (
    match find_offload t ~server ~vnic with
    | Some o when o.active -> Error "vNIC already offloaded"
    | Some _ | None -> (
      match (Vswitch.ruleset vs vnic, Vswitch.vnic_info vs vnic) with
      | None, _ -> Error "vNIC has no local rule tables"
      | _, None -> Error "unknown vNIC"
      | Some rs, Some vnic_rec ->
        let fe_servers =
          select_fe_candidates ?version_filter t ~be_server:server ~exclude:[] ~count:num_fes
        in
        if fe_servers = [] then Error "no idle vSwitches available as FEs"
        else begin
          let now = Sim.now t.sim in
          let o =
            {
              key = (server, Vnic.id_to_int vnic);
              be_server = server;
              vnic = vnic_rec;
              vni = Ruleset.vni rs;
              saved_ruleset = rs;
              triggered_at = now;
              be = None;
              fe_servers = [];
              completed_at = None;
              active = true;
              falling_back = false;
              repairing = false;
              idle_ticks = 0;
            }
          in
          Hashtbl.replace t.offload_tbl o.key o;
          t.offload_order <- o :: t.offload_order;
          t.offload_events <- t.offload_events + 1;
          (* Stage 1: push rule tables to every FE (parallel RPCs with
             retry under faults), then wire the locations, then the
             gateway, then learning.  The join fires once every push RPC
             has resolved — delivered or given up. *)
          let push_time =
            float_of_int (Ruleset.memory_bytes rs) /. t.cfg.push_bytes_per_s
          in
          let configured = ref [] in
          let remaining = ref (List.length fe_servers) in
          let stage2 sim =
            if o.active && t.alive then begin
              match !configured with
              | [] ->
                (* No FE accepted the tables: abort the offload. *)
                o.active <- false;
                Hashtbl.remove t.offload_tbl o.key
              | fes ->
                o.fe_servers <- List.rev fes;
                t.fes_provisioned <- t.fes_provisioned + List.length fes;
                let be =
                  install_be t ~vs ~vnic:vnic_rec ~vni:o.vni ~fes:(fe_ips t o.fe_servers)
                    ~fallback_ruleset:(Some o.saved_ruleset)
                in
                o.be <- Some be;
                registry_sync t o;
                (* Stage 2: gateway + learning. *)
                let gw_delay = rpc t in
                ignore
                  (Sim.schedule sim ~delay:gw_delay (fun sim' ->
                       if o.active then begin
                         let max_learn = update_routing t o in
                         let done_at = Sim.now sim' +. max_learn in
                         o.completed_at <- Some done_at;
                         Stats.Histogram.record t.completion_ms
                           ((done_at -. o.triggered_at) *. 1000.0);
                         (* Final stage: retention window, then drop
                            the local tables. *)
                         ignore
                           (Sim.schedule sim'
                              ~delay:(t.cfg.learning_interval +. t.cfg.rtt)
                              (fun _ ->
                                if o.active && not o.falling_back then begin
                                  Vswitch.drop_ruleset vs vnic;
                                  Be.set_stage be Be.Final
                                end)
                             : Sim.handle)
                       end)
                    : Sim.handle)
            end
          in
          List.iter
            (fun s ->
              rpc_to t s (fun ok ->
                  ignore
                    (Sim.schedule t.sim ~delay:push_time (fun sim ->
                         (if ok then begin
                            let fe = fe_service_ensure t s in
                            let replica = Ruleset.clone rs in
                            match
                              Fe.serve fe ~vnic:vnic_rec ~ruleset:replica
                                ~be:
                                  (Topology.underlay_ip (Fabric.topology t.fabric)
                                     server)
                            with
                            | Ok () ->
                              configured := s :: !configured;
                              watch_fe_host t s
                            | Error _ -> ()
                          end);
                         decr remaining;
                         if !remaining = 0 then
                           ignore
                             (Sim.schedule sim ~delay:(rpc t) (fun sim' -> stage2 sim')
                               : Sim.handle))
                      : Sim.handle)))
            fe_servers;
          Ok o
        end))

(* ------------------------------------------------------------------ *)
(* Scale-in (§4.3): evict all FEs on a vSwitch that needs its resources
   for local traffic. *)

let scale_in_server t server =
  if not (fenced t server) then ()
  else
  match Hashtbl.find_opt t.fe_services server with
  | None -> ()
  | Some fe ->
    Hashtbl.replace t.scaled_in_until server
      (Sim.now t.sim +. (30.0 *. t.cfg.report_interval));
    let served = Fe.served_vnics fe in
    List.iter
      (fun addr ->
        Hashtbl.iter
          (fun _ o ->
            if o.active && Vnic.Addr.equal (Vnic.addr o.vnic) addr then begin
              o.fe_servers <- List.filter (fun s -> s <> server) o.fe_servers;
              if o.fe_servers <> [] then ignore (update_routing t o : float);
              let missing = t.cfg.min_fes - List.length o.fe_servers in
              if missing > 0 then ignore (scale_out t o ~add:missing : int)
            end)
          t.offload_tbl;
        (* Retain the tables through the learning window so in-flight
           packets still process, then release. *)
        ignore
          (Sim.schedule t.sim ~delay:(t.cfg.learning_interval +. t.cfg.rtt) (fun _ ->
               if t.alive then Fe.unserve fe addr)
            : Sim.handle))
      served;
    Monitor.unwatch t.monitor ~key:server

(* ------------------------------------------------------------------ *)
(* SLO-driven elasticity (ROADMAP item 4): targeted scale-in of one
   offload — as opposed to [scale_in_server], which evicts a whole
   server for *local* pressure — plus the per-report-tick loop feeding
   observed P99 remote-hop latency into the {!Slo} decision core. *)

let scale_in_offload t o ~remove =
  if remove <= 0 || not o.active then 0
  else if not (fenced t o.be_server) then 0
  else begin
    let remove = min remove (List.length o.fe_servers - t.cfg.min_fes) in
    if remove <= 0 then 0
    else begin
      let topo = Fabric.topology t.fabric in
      (* Evict cross-rack FEs first (App. B.1 preference in reverse),
         then the most loaded — free the busiest servers for their own
         local traffic. *)
      let ranked =
        List.sort
          (fun a b ->
            let rack s = if Topology.same_rack topo s o.be_server then 1 else 0 in
            match compare (rack a) (rack b) with
            | 0 -> Float.compare (load_signal t b) (load_signal t a)
            | c -> c)
          o.fe_servers
      in
      let victims = Placement.take remove ranked in
      o.fe_servers <- List.filter (fun s -> not (List.mem s victims)) o.fe_servers;
      ignore (update_routing t o : float);
      registry_sync t o;
      List.iter
        (fun s ->
          (* A short re-pick holdoff so the next scale-out doesn't
             immediately re-provision the server just drained. *)
          Hashtbl.replace t.scaled_in_until s
            (Sim.now t.sim +. (5.0 *. t.cfg.report_interval));
          match Hashtbl.find_opt t.fe_services s with
          | None -> ()
          | Some fe ->
            if Fe.served_count fe <= 1 then Monitor.unwatch t.monitor ~key:s;
            (* Retain the tables through the learning window so
               in-flight packets still process, then release. *)
            ignore
              (Sim.schedule t.sim ~delay:(t.cfg.learning_interval +. t.cfg.rtt)
                 (fun _ -> if t.alive then Fe.unserve fe (Vnic.addr o.vnic))
                : Sim.handle))
        victims;
      List.length victims
    end
  end

(* Distinct FE servers across active offloads — the pool the SLO loop
   sizes. *)
let slo_pool_servers t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ o ->
      if o.active then
        List.iter (fun s -> Hashtbl.replace tbl s ()) o.fe_servers)
    t.offload_tbl;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl [])

let slo_tick t =
  match t.slo_state with
  | None -> ()
  | Some slo ->
    let samples =
      Hashtbl.fold
        (fun _ o acc ->
          if o.active then
            match o.be with
            | Some be when not (Be.closed be) ->
              List.rev_append (Be.drain_hop_latencies be) acc
            | Some _ | None -> acc
          else acc)
        t.offload_tbl []
    in
    let p99 =
      match samples with
      | [] -> None
      | _ -> Some (Stats.percentile (Array.of_list samples) 99.0)
    in
    let pool = slo_pool_servers t in
    let pool_n = List.length pool in
    t.slo_pool <- pool_n;
    if pool_n > 0 then begin
      let suspects =
        List.length
          (List.filter (fun s -> Monitor.is_suspect t.monitor ~key:s) pool)
      in
      let by_fe_count asc a b =
        let ca = List.length a.fe_servers and cb = List.length b.fe_servers in
        match if asc then compare ca cb else compare cb ca with
        | 0 -> compare a.key b.key
        | c -> c
      in
      match Slo.observe slo ~now:(Sim.now t.sim) ~p99 ~pool:pool_n ~suspects with
      | Slo.Hold _ -> ()
      | Slo.Scale_out add -> (
        (* Grow the thinnest offload — the likeliest tail contributor
           (deterministic tie-break by key). *)
        match List.sort (by_fe_count true) (List.filter (fun o -> o.active) t.offload_order) with
        | o :: _ -> ignore (scale_out t o ~add : int)
        | [] -> ())
      | Slo.Scale_in remove -> (
        match List.sort (by_fe_count false) (List.filter (fun o -> o.active) t.offload_order) with
        | o :: _ -> ignore (scale_in_offload t o ~remove : int)
        | [] -> ())
    end

(* ------------------------------------------------------------------ *)
(* Crash–restart reconciliation (DESIGN.md §13).

   [note_crash] is node-truth bookkeeping, not a controller command: at
   the crash instant the node's BE tracker and FE blobs *are* gone, so
   the handles mirroring them must agree (and release their SmartNIC
   reservations) no matter which controller observes it.  [reconcile_server]
   is the control-plane half — on reboot the node re-advertises (BE) /
   re-requests provisioning (FE) and the live primary re-pushes intent
   behind one config RPC. *)

let note_crash t sid =
  (match Hashtbl.find_opt t.fe_services sid with Some fe -> Fe.reset fe | None -> ());
  Hashtbl.iter
    (fun _ o ->
      if o.active then begin
        if o.be_server = sid then begin
          match o.be with
          | Some be when not (Be.closed be) -> Be.crash be
          | Some _ | None -> ()
        end;
        if o.be_server = sid || List.mem sid o.fe_servers then o.repairing <- true
      end)
    t.offload_tbl

let reconcile_server t sid =
  if t.alive then begin
    t.reconciles <- t.reconciles + 1;
    rpc_to t sid (fun ok ->
        if ok then begin
          (* FE half: re-request provisioning for every offload that
             intends this server as an FE. *)
          (match Hashtbl.find_opt t.fe_services sid with
          | None -> ()
          | Some fe ->
            Fe.reattach fe;
            Hashtbl.iter
              (fun _ o ->
                if
                  o.active && List.mem sid o.fe_servers
                  && (not (Fe.serves fe (Vnic.addr o.vnic)))
                  && fenced t sid
                then begin
                  match
                    Fe.serve fe ~vnic:o.vnic ~ruleset:(Ruleset.clone o.saved_ruleset)
                      ~be:(Topology.underlay_ip (Fabric.topology t.fabric) o.be_server)
                  with
                  | Ok () -> t.repairs <- t.repairs + 1
                  | Error _ -> ()
                end)
              t.offload_tbl);
          (* BE half: the node re-advertised its offloads; install a
             fresh tracker for each (the pre-crash instance is closed
             for good). *)
          Hashtbl.iter
            (fun _ o ->
              if o.active && o.be_server = sid then begin
                match Fabric.vswitch_opt t.fabric sid with
                | Some vs
                  when (match o.be with Some be -> Be.closed be | None -> false)
                       && fenced t sid ->
                  let stage =
                    match o.be with Some b -> Be.stage b | None -> Be.Final
                  in
                  let be =
                    install_be t ~vs ~vnic:o.vnic ~vni:o.vni
                      ~fes:(fe_ips t o.fe_servers)
                      ~fallback_ruleset:(Some o.saved_ruleset)
                  in
                  Be.set_stage be stage;
                  o.be <- Some be;
                  t.repairs <- t.repairs + 1;
                  registry_sync t o
                | Some _ | None -> ()
              end)
            t.offload_tbl
        end)
  end

(* Is the offload's intent fully realized in the dataplane?  (The
   conservation invariant's "installed" arm.) *)
let offload_installed t o =
  o.fe_servers <> []
  && (match o.be with Some be -> not (Be.closed be) | None -> false)
  && List.for_all
       (fun s ->
         match Hashtbl.find_opt t.fe_services s with
         | Some fe -> Fe.serves fe (Vnic.addr o.vnic)
         | None -> false)
       o.fe_servers
  && Gateway.lookup (Fabric.gateway t.fabric) (Vnic.addr o.vnic) <> None

(* Anti-entropy sweep, piggybacked on the report interval: diff intent
   vs actual and repair divergence the lifecycle events missed (lost
   reconcile RPCs, repeated crashes, manual meddling). *)
let repair_offload t o =
  if o.active && (not o.falling_back) && o.completed_at <> None then begin
    if offload_installed t o then o.repairing <- false
    else begin
      o.repairing <- true;
      let addr = Vnic.addr o.vnic in
      let healthy s =
        match Fabric.vswitch_opt t.fabric s with
        | Some vs -> not (Smartnic.is_crashed (Vswitch.nic vs))
        | None -> false
      in
      (* BE missing and its host is healthy again. *)
      (match o.be with
      | Some be when not (Be.closed be) -> ()
      | _ -> (
        match Fabric.vswitch_opt t.fabric o.be_server with
        | Some vs when healthy o.be_server && fenced t o.be_server ->
          let stage = match o.be with Some b -> Be.stage b | None -> Be.Final in
          let be =
            install_be t ~vs ~vnic:o.vnic ~vni:o.vni ~fes:(fe_ips t o.fe_servers)
              ~fallback_ruleset:(Some o.saved_ruleset)
          in
          Be.set_stage be stage;
          o.be <- Some be;
          t.repairs <- t.repairs + 1;
          registry_sync t o
        | Some _ | None -> ()));
      (* Intended FEs not serving. *)
      List.iter
        (fun s ->
          match Hashtbl.find_opt t.fe_services s with
          | Some fe when (not (Fe.serves fe addr)) && healthy s && fenced t s ->
            rpc_to t s (fun ok ->
                if ok && o.active && not (Fe.serves fe addr) then begin
                  match
                    Fe.serve fe ~vnic:o.vnic ~ruleset:(Ruleset.clone o.saved_ruleset)
                      ~be:(Topology.underlay_ip (Fabric.topology t.fabric) o.be_server)
                  with
                  | Ok () -> t.repairs <- t.repairs + 1
                  | Error _ -> ()
                end)
          | Some _ | None -> ())
        o.fe_servers;
      (* Route lost entirely (never with a live gateway, but cheap to
         repair and keeps the invariant honest). *)
      match Gateway.lookup (Fabric.gateway t.fabric) addr with
      | Some _ -> ()
      | None ->
        if o.fe_servers <> [] && fence_gateway t then begin
          Gateway.set_route (Fabric.gateway t.fabric) addr (fe_ips t o.fe_servers);
          t.repairs <- t.repairs + 1
        end
    end
  end

(* Conservation invariant: every intended offload is installed,
   repairing, or explicitly fallback-local — never silently absent. *)
let check_conservation t =
  Hashtbl.fold
    (fun _ o acc ->
      acc
      && ((not o.active) || o.falling_back || o.completed_at = None || o.repairing
         || offload_installed t o))
    t.offload_tbl true

(* ------------------------------------------------------------------ *)
(* Tenant rule updates (§3.2.2): one master mutation, fanned out to
   every replica, with cached flows invalidated everywhere. *)

let update_tenant_rules t o f =
  if not (fenced t o.be_server) then ()
  else
  let f rs =
    f rs;
    (* The mutation may have gone through table handles (e.g. the ACL)
       that do not bump the generation themselves. *)
    Ruleset.bump_generation rs
  in
  f o.saved_ruleset;
  let addr = Vnic.addr o.vnic in
  (* BE-local tables exist during dual-running or after fallback began. *)
  (match Fabric.vswitch_opt t.fabric o.be_server with
  | Some vs -> (
    match Vswitch.ruleset vs o.vnic.Vnic.id with
    | Some rs when rs != o.saved_ruleset ->
      f rs;
      Vswitch.invalidate_cached_flows vs o.vnic.Vnic.id;
      ignore (Vswitch.sync_rule_memory vs o.vnic.Vnic.id : Admission.t)
    | Some _ ->
      Vswitch.invalidate_cached_flows vs o.vnic.Vnic.id;
      ignore (Vswitch.sync_rule_memory vs o.vnic.Vnic.id : Admission.t)
    | None -> ())
  | None -> ());
  List.iter
    (fun s ->
      match Hashtbl.find_opt t.fe_services s with
      | None -> ()
      | Some fe ->
        rpc_to t s (fun ok ->
            if ok then begin
              match Fe.ruleset_of fe addr with
              | Some replica ->
                f replica;
                Fe.invalidate_cached_flows fe addr
              | None -> ()
            end))
    o.fe_servers

(* ------------------------------------------------------------------ *)
(* BE relocation (§7.2): the VM live-migrated; only the FE-side BE
   location config changes.  The offloaded tables never move, and the
   vNIC-server entries (which point at the FEs) stay valid, which is why
   this takes effect in under a millisecond. *)

let migrate_be t o ~to_server =
  if not o.active then Error "offload not active"
  else if not (fenced t o.be_server) || not (fenced t to_server) then
    Error "fenced: stale controller epoch"
  else begin
    match (Fabric.vswitch_opt t.fabric o.be_server, Fabric.vswitch_opt t.fabric to_server) with
    | None, _ -> Error "old BE server has no vSwitch"
    | _, None -> Error "target server has no vSwitch"
    | Some old_vs, Some new_vs ->
      if Vswitch.find_vnic new_vs (Vnic.addr o.vnic) <> None then
        Error "target already hosts this vNIC"
      else begin
        (* Recreate the vNIC on the target with only the BE residual
           footprint; the hypervisor brings the session states along. *)
        let shim =
          Ruleset.create ~vni:o.vni
            ~fixed_overhead_bytes:(Vswitch.params new_vs).Params.be_residual_bytes_per_vnic ()
        in
        match Vswitch.add_vnic new_vs o.vnic shim with
        | Error _ -> Error "target lacks memory for BE residual state"
        | Ok () ->
          Vswitch.drop_ruleset new_vs o.vnic.Vnic.id;
          (* Carry the states (the VM migration copies them). *)
          Vswitch.iter_sessions old_vs o.vnic.Vnic.id (fun key session ->
              match session.Vswitch.state with
              | Some _ ->
                ignore
                  (Vswitch.store_session new_vs o.vnic.Vnic.id key
                     { session with Vswitch.pre = None }
                    : Admission.t)
              | None -> ());
          let old_be = o.be in
          let fes = fe_ips t o.fe_servers in
          let be' =
            install_be t ~vs:new_vs ~vnic:o.vnic ~vni:o.vni ~fes
              ~fallback_ruleset:(Some o.saved_ruleset)
          in
          Be.set_stage be'
            (match old_be with Some b -> Be.stage b | None -> Be.Final);
          (match old_be with Some b -> Be.uninstall b | None -> ());
          Vswitch.remove_vnic old_vs o.vnic.Vnic.id;
          o.be <- Some be';
          o.be_server <- to_server;
          registry_sync t o;
          (* The sub-millisecond part: point every FE at the new BE. *)
          let new_ip = Topology.underlay_ip (Fabric.topology t.fabric) to_server in
          let addr = Vnic.addr o.vnic in
          List.iter
            (fun s ->
              match Hashtbl.find_opt t.fe_services s with
              | Some fe ->
                ignore
                  (Sim.schedule t.sim ~delay:0.0005 (fun _ -> Fe.set_be fe addr new_ip)
                    : Sim.handle)
              | None -> ())
            o.fe_servers;
          Ok ()
      end
  end

(* ------------------------------------------------------------------ *)
(* Elephant-flow pinning (§7.5) *)

let pin_elephant t o flow =
  if not o.active then Error "offload not active"
  else if not (fenced t o.be_server) then Error "fenced: stale controller epoch"
  else begin
    match
      select_fe_candidates t ~be_server:o.be_server ~exclude:o.fe_servers ~count:1
    with
    | [] -> Error "no idle vSwitch available for a dedicated FE"
    | s :: _ -> (
      let fe = fe_service_ensure t s in
      let replica = Ruleset.clone o.saved_ruleset in
      match
        Fe.serve fe ~vnic:o.vnic ~ruleset:replica
          ~be:(Topology.underlay_ip (Fabric.topology t.fabric) o.be_server)
      with
      | Error _ -> Error "candidate FE lacks memory for the tables"
      | Ok () ->
        watch_fe_host t s;
        (match o.be with
        | Some be -> Be.pin_flow be flow (Topology.underlay_ip (Fabric.topology t.fabric) s)
        | None -> ());
        Ok s)
  end

(* ------------------------------------------------------------------ *)
(* Automatic policies (Fig. 8) *)

let heaviest_vnic t vs ~server ~by_memory =
  let score vid =
    if by_memory then float_of_int (Vswitch.vnic_memory_bytes vs vid)
    else begin
      let key = (server, Vnic.id_to_int vid) in
      let current = Vswitch.vnic_slow_execs vs vid in
      let prev = Option.value (Hashtbl.find_opt t.slow_prev key) ~default:0 in
      float_of_int (current - prev)
    end
  in
  let candidates =
    List.filter (fun vid -> Vswitch.ruleset vs vid <> None) (Vswitch.vnic_ids vs)
  in
  match candidates with
  | [] -> None
  | _ :: _ ->
    Some
      (List.fold_left
         (fun best vid -> if score vid > score best then vid else best)
         (List.hd candidates) candidates)

let remote_fraction t s =
  match Hashtbl.find_opt t.fe_services s with
  | None -> 0.0
  | Some fe -> (
    match Fabric.vswitch_opt t.fabric s with
    | None -> 0.0
    | Some vs ->
      let nic = Vswitch.nic vs in
      let p = Vswitch.params vs in
      let remote_now = Stats.Counter.value (Fe.counters fe).Fe.remote_cycles in
      let remote_prev = Option.value (Hashtbl.find_opt t.remote_prev s) ~default:0 in
      let busy_now = Smartnic.total_busy_seconds nic in
      let busy_prev = Option.value (Hashtbl.find_opt t.busy_prev s) ~default:0.0 in
      Hashtbl.replace t.remote_prev s remote_now;
      Hashtbl.replace t.busy_prev s busy_now;
      let remote_secs = float_of_int (remote_now - remote_prev) /. p.Params.cpu_hz in
      let busy_delta = busy_now -. busy_prev in
      if busy_delta <= 1e-12 then 0.0 else Float.min 1.0 (remote_secs /. busy_delta))

(* §4.2.2: fall back when the controller estimates the local vSwitch
   would stay below the safe level even after absorbing the offloaded
   load — approximated as several consecutive reports with every FE
   near-idle and the BE well under the safe level. *)
let consider_fallback t =
  if t.cfg.auto_fallback then
    Hashtbl.iter
      (fun _ o ->
        if o.active && not o.falling_back && o.completed_at <> None then begin
          let be_cpu = last_cpu t o.be_server in
          let fe_busy =
            List.exists (fun s -> last_cpu t s > 0.05) o.fe_servers
          in
          if (not fe_busy) && be_cpu < t.cfg.safe_level /. 2.0 then begin
            o.idle_ticks <- o.idle_ticks + 1;
            if o.idle_ticks >= t.cfg.fallback_idle_ticks then
              ignore (fallback_vnic t o : (unit, string) result)
          end
          else o.idle_ticks <- 0
        end)
      t.offload_tbl

let report_tick t =
  List.iter
    (fun s ->
      match Fabric.vswitch_opt t.fabric s with
      | None -> ()
      | Some vs ->
        let cpu = ref 0.0 and mem = ref 0.0 in
        Vswitch.utilization_report vs ~cpu ~mem;
        Hashtbl.replace t.reports s (!cpu, !mem);
        (match Hashtbl.find_opt t.load_ewma s with
        | Some e -> Placement.Ewma.observe e !cpu
        | None ->
          let e = Placement.Ewma.create ~alpha:t.cfg.ewma_alpha () in
          Placement.Ewma.observe e !cpu;
          Hashtbl.replace t.load_ewma s e);
        if !cpu > t.cfg.overload_level || !mem > t.cfg.overload_level then
          Hashtbl.replace t.overloads s
            (1 + Option.value (Hashtbl.find_opt t.overloads s) ~default:0);
        let hosts_fes =
          match Hashtbl.find_opt t.fe_services s with
          | Some fe -> Fe.served_count fe > 0
          | None -> false
        in
        (* Fig. 8 decision tree. *)
        if hosts_fes && t.cfg.auto_scale && !cpu > t.cfg.scale_threshold then begin
          let rf = remote_fraction t s in
          if rf > 0.5 then begin
            (* Remote pressure: scale out the offload served here —
               doubling its FE count, but at most once per report
               interval even if several of its FEs are hot at once. *)
            match Hashtbl.find_opt t.fe_services s with
            | Some fe -> (
              match Fe.served_vnics fe with
              | addr :: _ ->
                Hashtbl.iter
                  (fun _ o ->
                    if o.active && Vnic.Addr.equal (Vnic.addr o.vnic) addr then begin
                      let now = Sim.now t.sim in
                      let recently =
                        match Hashtbl.find_opt t.last_scaled o.key with
                        | Some t0 -> now -. t0 < t.cfg.report_interval *. 1.5
                        | None -> false
                      in
                      if not recently then begin
                        Hashtbl.replace t.last_scaled o.key now;
                        ignore (scale_out t o ~add:(List.length o.fe_servers) : int)
                      end
                    end)
                  t.offload_tbl
              | [] -> ())
            | None -> ()
          end
          else scale_in_server t s
        end
        else if t.cfg.auto_offload && (!cpu > t.cfg.offload_threshold || !mem > t.cfg.offload_threshold)
        then begin
          match heaviest_vnic t vs ~server:s ~by_memory:(!mem > !cpu) with
          | Some vid when find_offload t ~server:s ~vnic:vid = None ->
            ignore (offload_vnic t ~server:s ~vnic:vid () : (offload, string) result)
          | Some _ | None -> ()
        end;
        (* Refresh per-vNIC slow-path baselines. *)
        List.iter
          (fun vid ->
            Hashtbl.replace t.slow_prev (s, Vnic.id_to_int vid) (Vswitch.vnic_slow_execs vs vid))
          (Vswitch.vnic_ids vs))
    (servers_with_vswitch t);
  (* Anti-entropy sweep (DESIGN.md §13): diff controller intent vs
     data-plane actual and repair divergence, piggybacked on the
     report interval. *)
  Hashtbl.iter (fun _ o -> repair_offload t o) t.offload_tbl;
  consider_fallback t;
  slo_tick t

let start t =
  if not t.started then begin
    t.started <- true;
    Monitor.start t.monitor;
    Sim.every t.sim ~period:t.cfg.report_interval (fun _ ->
        if t.alive then report_tick t;
        true)
  end

(* ------------------------------------------------------------------ *)
(* Construction and controller liveness (HA, DESIGN.md §13) *)

let create ?(config = default_config) ~fabric ~rng () =
  let sim = Fabric.sim fabric in
  let t =
    {
      sim;
      fabric;
      cfg = config;
      rng;
      fe_services = Hashtbl.create 32;
      offload_tbl = Hashtbl.create 16;
      offload_order = [];
      reports = Hashtbl.create 64;
      slow_prev = Hashtbl.create 64;
      remote_prev = Hashtbl.create 32;
      busy_prev = Hashtbl.create 64;
      monitor =
        Monitor.create ~sim ~interval:config.ping_interval
          ~misses_to_fail:config.ping_misses_to_fail ();
      completion_ms = Stats.Histogram.create ();
      overloads = Hashtbl.create 64;
      last_scaled = Hashtbl.create 16;
      scaled_in_until = Hashtbl.create 16;
      offload_events = 0;
      scale_out_events = 0;
      fes_provisioned = 0;
      rpc_attempts = 0;
      rpc_retries = 0;
      rpc_failures = 0;
      started = false;
      alive = true;
      epoch = 1;
      registry = None;
      fenced_rejected = 0;
      stale_discards = 0;
      reconciles = 0;
      repairs = 0;
      telemetry = None;
      load_ewma = Hashtbl.create 64;
      slo_state =
        Option.map (fun c -> Slo.create ~config:c ~now:(Sim.now sim) ()) config.slo;
      slo_pool = 0;
    }
  in
  Fabric.on_lifecycle fabric (fun ~server ev ->
      match ev with
      | `Crashed -> note_crash t server
      | `Restarted -> reconcile_server t server);
  t

let halt t =
  t.alive <- false;
  Monitor.stop t.monitor

let revive t =
  t.alive <- true;
  if t.started then Monitor.start t.monitor

let alive t = t.alive
let epoch t = t.epoch
let set_epoch t e = t.epoch <- e

let set_registry t r =
  t.registry <- Some r;
  (* The FE service handles live on the nodes; both controllers of an
     HA pair address the same table. *)
  t.fe_services <- r.Registry.fes

(* A standby taking over: rebuild offload intent from the registry (BE
   re-advertisements collected from the nodes).  Entries already known
   are kept; each adopted offload is marked repairing so the next
   anti-entropy sweep verifies (and if needed restores) its dataplane
   state under the new epoch. *)
let adopt_from_registry t =
  match t.registry with
  | None -> 0
  | Some r ->
    let adopted = ref 0 in
    Hashtbl.iter
      (fun key (e : Registry.entry) ->
        if not (Hashtbl.mem t.offload_tbl key) then begin
          incr adopted;
          let o =
            {
              key;
              be_server = e.Registry.r_be_server;
              vnic = e.Registry.r_vnic;
              vni = e.Registry.r_vni;
              saved_ruleset = e.Registry.r_ruleset;
              triggered_at = Sim.now t.sim;
              be = e.Registry.r_be;
              fe_servers = e.Registry.r_fe_servers;
              completed_at = Some (Sim.now t.sim);
              active = true;
              falling_back = false;
              repairing = true;
              idle_ticks = 0;
            }
          in
          Hashtbl.replace t.offload_tbl key o;
          t.offload_order <- o :: t.offload_order;
          List.iter (fun s -> watch_fe_host t s) o.fe_servers
        end)
      r.Registry.offloads;
    !adopted

let fenced_rejected t = t.fenced_rejected
let stale_discards t = t.stale_discards
let reconciles t = t.reconciles
let repairs t = t.repairs

(* ------------------------------------------------------------------ *)
(* Introspection *)

let offloads t = List.filter (fun o -> o.active) t.offload_order
let offload_vnic_id o = o.vnic.Vnic.id
let offload_be_server o = o.be_server
let offload_fe_servers o = o.fe_servers

let offload_be o =
  match o.be with
  | Some be -> be
  | None -> failwith "Controller.offload_be: dual-running stage not reached yet"

let offload_stage o = match o.be with Some be -> Be.stage be | None -> Be.Dual
let offload_completed_at o = o.completed_at

let slo t = t.slo_state
let slo_pool_size t = List.length (slo_pool_servers t)

let completion_times_ms t = t.completion_ms
let offload_events t = t.offload_events
let scale_out_events t = t.scale_out_events
let fes_provisioned t = t.fes_provisioned
let rpc_attempts t = t.rpc_attempts
let rpc_retries t = t.rpc_retries
let rpc_failures t = t.rpc_failures

let overload_occurrences t s = Option.value (Hashtbl.find_opt t.overloads s) ~default:0

let total_overload_occurrences t =
  Hashtbl.fold (fun _ n acc -> acc + n) t.overloads 0

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  t.telemetry <- Some reg;
  T.register_counter reg ~name:"controller/offload_events" (fun () ->
      t.offload_events);
  T.register_counter reg ~name:"controller/scale_out_events" (fun () ->
      t.scale_out_events);
  T.register_counter reg ~name:"controller/fes_provisioned" (fun () ->
      t.fes_provisioned);
  T.register_counter reg ~name:"controller/overload_occurrences" (fun () ->
      total_overload_occurrences t);
  T.register_counter reg ~name:"controller/rpc_attempts" (fun () -> t.rpc_attempts);
  T.register_counter reg ~name:"controller/rpc_retries" (fun () -> t.rpc_retries);
  T.register_counter reg ~name:"controller/rpc_failures" (fun () -> t.rpc_failures);
  T.register_counter reg ~name:"controller/fenced_rejected" (fun () ->
      t.fenced_rejected);
  T.register_counter reg ~name:"controller/stale_discards" (fun () ->
      t.stale_discards);
  T.register_counter reg ~name:"controller/reconciles" (fun () -> t.reconciles);
  T.register_counter reg ~name:"controller/repairs" (fun () -> t.repairs);
  T.register_gauge reg ~name:"controller/epoch" (fun () -> float_of_int t.epoch);
  T.register_gauge reg ~name:"controller/active_offloads" (fun () ->
      float_of_int (List.length (offloads t)));
  T.register_histogram reg ~name:"controller/completion_ms" t.completion_ms;
  (match t.slo_state with
  | Some slo ->
    Slo.register_telemetry slo ~prefix:"controller/slo" reg;
    T.register_gauge reg ~name:"controller/slo/pool_size" (fun () ->
        float_of_int t.slo_pool)
  | None -> ());
  Monitor.register_telemetry t.monitor reg;
  (* Components the controller already spawned; later ones register at
     creation via [t.telemetry]. *)
  Hashtbl.iter (fun _ fe -> Fe.register_telemetry fe reg) t.fe_services;
  Hashtbl.iter
    (fun _ o -> match o.be with Some be -> Be.register_telemetry be reg | None -> ())
    t.offload_tbl

let pp_status ppf t =
  let offs = offloads t in
  Format.fprintf ppf "@[<v>%d active offload(s); %d offload event(s), %d scale-out(s), %d FE(s) provisioned@,"
    (List.length offs) t.offload_events t.scale_out_events t.fes_provisioned;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %a: BE on server %d (%s), FEs on [%s]"
        Vnic.pp o.vnic o.be_server
        (match o.be with
        | Some be -> ( match Be.stage be with Be.Final -> "final" | Be.Dual -> "dual-running")
        | None -> "configuring")
        (String.concat "; " (List.map string_of_int o.fe_servers));
      (match o.be with
      | Some be ->
        let c = Be.counters be in
        Format.fprintf ppf " | tx-via-FE %d, rx-from-FE %d, notify %d, bounced %d, pinned %d"
          (Stats.Counter.value c.Be.tx_via_fe)
          (Stats.Counter.value c.Be.rx_from_fe)
          (Stats.Counter.value c.Be.notify_received)
          (Stats.Counter.value c.Be.bounced)
          (Be.pinned_count be)
      | None -> ());
      Format.fprintf ppf "@,")
    offs;
  Format.fprintf ppf "  monitor: %d watched, %d probes, %d failure(s) declared, %d mass-failure suspicion(s)@]"
    (Monitor.watched t.monitor) (Monitor.probes_sent t.monitor)
    (Monitor.failures_declared t.monitor)
    (Monitor.mass_failure_suspected t.monitor)
