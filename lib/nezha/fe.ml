open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch

type cached = { pre : Pre_action.t; generation : int }

type served = {
  vnic : Vnic.t;
  ruleset : Ruleset.t;
  mutable be : Ipv4.t;
  flows : cached Flow_table.t;
  mutable rule_bytes : int;
}

type counters = {
  remote_cycles : Stats.Counter.t;
  rule_lookups : Stats.Counter.t;
  fast_hits : Stats.Counter.t;
  notify_sent : Stats.Counter.t;
  rx_forwarded : Stats.Counter.t;
  tx_finalized : Stats.Counter.t;
  hop_acks_sent : Stats.Counter.t;
}

type t = {
  vs : Vswitch.t;
  served : served Vnic.Addr.Table.t;
  counters : counters;
}

let params t = Vswitch.params t.vs

let flow_entry_bytes t = (params t).Params.session_entry_overhead

(* All FE work is charged through here so the controller can attribute
   this vSwitch's load to remote serving vs. local vNICs. *)
let charge t ~cycles k =
  Stats.Counter.add t.counters.remote_cycles cycles;
  Vswitch.charge t.vs ~cycles k

let key_of pkt = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow

(* FE stage spans are the remote share of a flow's latency — the work that
   exists only because the vNIC is load-shared.  The [cached] detail says
   whether pre-actions came from the cached-flow table or a rule lookup. *)
let trace_stage t pkt ~name ~cached ~t0 =
  Vswitch.trace_span t.vs pkt ~name ~component:("fe/" ^ Vswitch.name t.vs)
    ~site:Nezha_telemetry.Trace.Remote
    ~args:[ ("cached", if cached then "true" else "false") ]
    ~t0 ()

(* Resolve the pre-actions for a packet of a served vNIC.  [flow_tx] is
   the session tuple in TX orientation (source = the served vNIC). *)
let resolve_pre t s ~flow_tx ~key =
  let generation = Ruleset.generation s.ruleset in
  match Flow_table.find s.flows key with
  | Some c when c.generation = generation ->
    Stats.Counter.incr t.counters.fast_hits;
    ignore (Flow_table.touch s.flows ~now:(Sim.now (Vswitch.sim t.vs)) key : bool);
    Some (c.pre, (params t).Params.split_fast_path_cycles, false)
  | Some _ | None -> (
    Stats.Counter.incr t.counters.rule_lookups;
    match Vswitch.slow_path t.vs s.ruleset ~vpc:s.vnic.Vnic.vpc ~flow_tx with
    | None -> None
    | Some { Ruleset.pre; cycles } ->
      let entry = { pre; generation } in
      let bytes = flow_entry_bytes t in
      if Smartnic.mem_reserve (Vswitch.nic t.vs) bytes then begin
        match Flow_table.insert s.flows ~now:(Sim.now (Vswitch.sim t.vs)) key entry with
        | Ok () -> ()
        | Error _ -> Smartnic.mem_release (Vswitch.nic t.vs) bytes
      end;
      (* Creating the bidirectional cached flow is the expensive share of
         session setup, and it now happens here, not at the BE. *)
      Some (pre, cycles + (params t).Params.flow_cache_cycles, true))

let forward_to_be t s pkt ~nsh =
  Packet.set_nsh pkt nsh;
  Packet.encap_vxlan pkt ~vni:(Ruleset.vni s.ruleset)
    ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:s.be;
  Vswitch.emit t.vs (Vswitch.To_net pkt)

(* RX workflow (§3.2.1 blue flow): query pre-actions, piggyback them and
   the preserved outer source, forward to the BE. *)
let handle_rx t s pkt ~outer =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  let key = key_of pkt in
  let flow_tx = Five_tuple.reverse pkt.Packet.flow in
  match resolve_pre t s ~flow_tx ~key with
  | None ->
    charge t ~cycles:(params t).Params.table_base_cycles (fun _ ->
        Vswitch.count_drop t.vs Nf.No_route)
  | Some (pre, lookup_cycles, fresh) ->
    let p = params t in
    let cycles =
      Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
      + lookup_cycles + p.Params.encap_cycles
    in
    charge t ~cycles (fun _ ->
        trace_stage t pkt ~name:"fe_rx" ~cached:(not fresh) ~t0;
        let orig_outer_src =
          match outer with Some v -> Some v.Packet.outer_src | None -> None
        in
        Stats.Counter.incr t.counters.rx_forwarded;
        forward_to_be t s pkt
          ~nsh:
            {
              Packet.empty_nsh with
              Packet.carried_pre_actions = Some (Pre_action.encode pre);
              orig_outer_src;
            })

let send_notify t s pkt pre =
  Stats.Counter.incr t.counters.notify_sent;
  Vswitch.count_notify t.vs;
  let notify =
    Packet.create ~vpc:pkt.Packet.vpc
      ~flow:(Five_tuple.reverse pkt.Packet.flow)
      ~direction:Packet.Rx ~flags:Packet.no_flags ()
  in
  Packet.set_nsh notify
    { Packet.empty_nsh with Packet.notify = true;
      carried_pre_actions = Some (Pre_action.encode pre) };
  Packet.encap_vxlan notify ~vni:(Ruleset.vni s.ruleset)
    ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:s.be;
  Vswitch.emit t.vs (Vswitch.To_net notify)

(* Hop-level ack for the BE's loss tracker: echo the sequence back on a
   bare control packet.  Sent regardless of the rule verdict — the ack
   acknowledges the hop, not the delivery. *)
let send_hop_ack t s pkt seq =
  Stats.Counter.incr t.counters.hop_acks_sent;
  let ack =
    Packet.create ~vpc:pkt.Packet.vpc
      ~flow:(Five_tuple.reverse pkt.Packet.flow)
      ~direction:Packet.Rx ~flags:Packet.no_flags ()
  in
  Packet.set_nsh ack { Packet.empty_nsh with Packet.hop_ack = Some seq };
  Packet.encap_vxlan ack ~vni:(Ruleset.vni s.ruleset)
    ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:s.be;
  Vswitch.emit t.vs (Vswitch.To_net ack)

(* TX workflow (§3.2.1 red flow): the packet carries the state; combine
   with pre-actions and finalize. *)
let handle_tx t s pkt nsh state_blob =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  match State.decode state_blob with
  | Error _ -> Vswitch.count_drop t.vs Nf.No_route
  | Ok state -> (
    let key = key_of pkt in
    match resolve_pre t s ~flow_tx:pkt.Packet.flow ~key with
    | None ->
      charge t ~cycles:(params t).Params.table_base_cycles (fun _ ->
          Vswitch.count_drop t.vs Nf.No_route)
    | Some (pre, lookup_cycles, fresh) ->
      let p = params t in
      let ack_cycles =
        match nsh.Packet.hop_seq with None -> 0 | Some _ -> p.Params.encap_cycles
      in
      let cycles =
        Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
        + lookup_cycles + p.Params.encap_cycles + ack_cycles
      in
      charge t ~cycles (fun _ ->
          trace_stage t pkt ~name:"fe_tx" ~cached:(not fresh) ~t0;
          (match nsh.Packet.hop_seq with
          | Some seq -> send_hop_ack t s pkt seq
          | None -> ());
          (* Notify the BE when the rule lookup's rule-table-involved
             state disagrees with what the packet carried (§3.2.2): a
             notify fires only on fresh lookups, and only on an actual
             difference — both conditions keep the notify rate low. *)
          (if fresh then begin
             let be_has_stats = state.State.stats <> None in
             let rules_want_stats = pre.Pre_action.stats <> None in
             if be_has_stats <> rules_want_stats then send_notify t s pkt pre
           end);
          let verdict, _state_out =
            Nf.process ~pre ~state:(Some state) ~dir:Packet.Tx ~flags:pkt.Packet.flags
              ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt) ()
          in
          Stats.Counter.incr t.counters.tx_finalized;
          match verdict with
          | Nf.Deliver ->
            ignore (Packet.clear_nsh pkt : Packet.nsh option);
            Vswitch.maybe_mirror t.vs pre pkt;
            let vni = pre.Pre_action.vni in
            let outer_dst =
              match pre.Pre_action.peer_server with
              | Some server -> server
              | None -> Vswitch.gateway t.vs
            in
            Packet.encap_vxlan pkt ~vni ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst;
            Vswitch.emit t.vs (Vswitch.To_net pkt)
          | Nf.Drop reason -> Vswitch.count_drop t.vs reason))

let hook t pkt ~outer =
  let dst_addr = { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst } in
  match Vnic.Addr.Table.find_opt t.served dst_addr with
  | Some s ->
    handle_rx t s pkt ~outer;
    `Handled
  | None -> (
    let src_addr = { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.src } in
    match Vnic.Addr.Table.find_opt t.served src_addr with
    | Some s -> (
      match Packet.clear_nsh pkt with
      | Some ({ Packet.carried_state = Some blob; _ } as nsh) ->
        handle_tx t s pkt nsh blob;
        `Handled
      | Some _ | None -> `Continue)
    | None -> `Continue)

let process t pkt ~outer = hook t pkt ~outer

(* Vectored net-hook entry.  [batch] arrives still encapsulated; the
   classification pass reads the inner/NSH fields (visible without
   decapping), decides each packet's workflow, resolves pre-actions per
   packet — the cached-flow table itself memoizes a burst's flow-key
   groups, because the first packet of a group inserts synchronously and
   the rest hit — and decaps only the packets it keeps.  The
   still-encapsulated leftover returns to the caller.  One SmartNIC
   charge covers the burst; the continuation replays the per-packet
   workflows in order, sharing each group's encoded pre-action blob and
   collecting outgoing packets into one burst for the sink. *)
let act_skip = 0
let act_rx = 1
let act_tx = 2
let act_noroute = 3

let process_batch t batch =
  let n = Pbatch.length batch in
  if n = 0 then begin
    Pbatch.recycle batch;
    None
  end
  else begin
    let t0 = Sim.now (Vswitch.sim t.vs) in
    let p = params t in
    let act = Array.make n act_skip in
    let srv = Array.make n None in
    let pre_a = Array.make n None in
    let fresh_a = Array.make n false in
    let sta = Array.make n None in
    let meta = Array.make n None in
    let outs = Array.make n None in
    let leftover = ref None in
    let total = ref 0 in
    let handled = ref 0 in
    for i = 0 to n - 1 do
      let pkt = Pbatch.get batch i in
      let dst_addr =
        { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst }
      in
      match Vnic.Addr.Table.find_opt t.served dst_addr with
      | Some s -> (
        let outer = Packet.decap_vxlan pkt in
        outs.(i) <- (match outer with Some v -> Some v.Packet.outer_src | None -> None);
        srv.(i) <- Some s;
        let key = key_of pkt in
        incr handled;
        match resolve_pre t s ~flow_tx:(Five_tuple.reverse pkt.Packet.flow) ~key with
        | None ->
          act.(i) <- act_noroute;
          total := !total + p.Params.table_base_cycles
        | Some (pre, lookup_cycles, fresh) ->
          act.(i) <- act_rx;
          pre_a.(i) <- Some pre;
          fresh_a.(i) <- fresh;
          total :=
            !total
            + Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
            + lookup_cycles + p.Params.encap_cycles)
      | None -> (
        let src_addr =
          { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.src }
        in
        let declined () =
          let lb =
            match !leftover with
            | Some lb -> lb
            | None ->
              let lb = Pbatch.alloc () in
              leftover := Some lb;
              lb
          in
          Pbatch.push lb pkt
        in
        match (Vnic.Addr.Table.find_opt t.served src_addr, pkt.Packet.nsh) with
        | Some s, Some { Packet.carried_state = Some blob; _ } -> (
          ignore (Packet.decap_vxlan pkt : Packet.vxlan option);
          let nsh =
            match Packet.clear_nsh pkt with Some m -> m | None -> Packet.empty_nsh
          in
          match State.decode blob with
          | Error _ ->
            (* Malformed carried state: counted now, as the single path
               would, with no cycles charged. *)
            Vswitch.count_drop t.vs Nf.No_route
          | Ok state -> (
            srv.(i) <- Some s;
            sta.(i) <- Some state;
            meta.(i) <- Some nsh;
            let key = key_of pkt in
            incr handled;
            match resolve_pre t s ~flow_tx:pkt.Packet.flow ~key with
            | None ->
              act.(i) <- act_noroute;
              total := !total + p.Params.table_base_cycles
            | Some (pre, lookup_cycles, fresh) ->
              act.(i) <- act_tx;
              pre_a.(i) <- Some pre;
              fresh_a.(i) <- fresh;
              let ack_cycles =
                match nsh.Packet.hop_seq with None -> 0 | Some _ -> p.Params.encap_cycles
              in
              total :=
                !total
                + Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
                + lookup_cycles + p.Params.encap_cycles + ack_cycles))
        | (Some _ | None), _ -> declined ())
    done;
    if !handled = 0 then Pbatch.recycle batch
    else begin
      Stats.Counter.add t.counters.remote_cycles !total;
      (* Shared per-group blob: members carry physically-equal
         pre-actions, so encode once per run of the same resolution. *)
      let last_pre = ref None in
      let last_blob = ref Bytes.empty in
      let encode_pre pre =
        (match !last_pre with
        | Some lp when lp == pre -> ()
        | Some _ | None ->
          last_pre := Some pre;
          last_blob := Pre_action.encode pre);
        !last_blob
      in
      let accepted =
        Vswitch.charge_batch t.vs ~cycles:!total ~npkts:!handled (fun _ ->
            let out = Pbatch.alloc () in
            for i = 0 to n - 1 do
              let pkt = Pbatch.get batch i in
              let a = act.(i) in
              if a = act_rx then begin
                let s = Option.get srv.(i) in
                let pre = Option.get pre_a.(i) in
                trace_stage t pkt ~name:"fe_rx" ~cached:(not fresh_a.(i)) ~t0;
                Stats.Counter.incr t.counters.rx_forwarded;
                Packet.set_nsh pkt
                  {
                    Packet.empty_nsh with
                    Packet.carried_pre_actions = Some (encode_pre pre);
                    orig_outer_src = outs.(i);
                  };
                Packet.encap_vxlan pkt ~vni:(Ruleset.vni s.ruleset)
                  ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:s.be;
                Pbatch.push out pkt
              end
              else if a = act_tx then begin
                let s = Option.get srv.(i) in
                let pre = Option.get pre_a.(i) in
                let state = Option.get sta.(i) in
                let nsh = Option.get meta.(i) in
                trace_stage t pkt ~name:"fe_tx" ~cached:(not fresh_a.(i)) ~t0;
                (match nsh.Packet.hop_seq with
                | Some seq -> send_hop_ack t s pkt seq
                | None -> ());
                (if fresh_a.(i) then begin
                   let be_has_stats = state.State.stats <> None in
                   let rules_want_stats = pre.Pre_action.stats <> None in
                   if be_has_stats <> rules_want_stats then send_notify t s pkt pre
                 end);
                let verdict, _state_out =
                  Nf.process ~pre ~state:(Some state) ~dir:Packet.Tx
                    ~flags:pkt.Packet.flags ~proto:pkt.Packet.flow.Five_tuple.proto
                    ~wire_bytes:(Packet.wire_size pkt) ()
                in
                Stats.Counter.incr t.counters.tx_finalized;
                match verdict with
                | Nf.Deliver ->
                  Vswitch.maybe_mirror t.vs pre pkt;
                  let outer_dst =
                    match pre.Pre_action.peer_server with
                    | Some server -> server
                    | None -> Vswitch.gateway t.vs
                  in
                  Packet.encap_vxlan pkt ~vni:pre.Pre_action.vni
                    ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst;
                  Pbatch.push out pkt
                | Nf.Drop reason -> Vswitch.count_drop t.vs reason
              end
              else if a = act_noroute then Vswitch.count_drop t.vs Nf.No_route
            done;
            Vswitch.emit_batch t.vs out;
            Pbatch.recycle batch)
      in
      if not accepted then Pbatch.recycle batch
    end;
    !leftover
  end

(* The FE service in the shared ingress shape.  [ingest] accepts a
   still-encapsulated packet and decapsulates it itself; a batched
   leftover re-enters the vSwitch's net ingress. *)
module Ingress_impl = struct
  type nonrec t = t
  type ctx = unit

  let ingest t ~ctx:() pkt =
    let outer = Packet.decap_vxlan pkt in
    hook t pkt ~outer

  let ingest_batch t ~ctx:() batch =
    match process_batch t batch with
    | None -> ()
    | Some leftover ->
      Pbatch.iter leftover (fun pkt -> Vswitch.from_net t.vs pkt);
      Pbatch.recycle leftover
end

let reattach t =
  Vswitch.set_net_hook t.vs (Some (fun pkt ~outer -> hook t pkt ~outer));
  Vswitch.set_net_hook_batch t.vs (Some (fun batch -> process_batch t batch))

let install vs =
  let t =
    {
      vs;
      served = Vnic.Addr.Table.create 8;
      counters =
        {
          remote_cycles = Stats.Counter.create ();
          rule_lookups = Stats.Counter.create ();
          fast_hits = Stats.Counter.create ();
          notify_sent = Stats.Counter.create ();
          rx_forwarded = Stats.Counter.create ();
          tx_finalized = Stats.Counter.create ();
          hop_acks_sent = Stats.Counter.create ();
        };
    }
  in
  reattach t;
  (* Cached-flow aging pump for the served regions. *)
  let p = Vswitch.params vs in
  Sim.every (Vswitch.sim vs) ~period:(p.Params.flow_aging /. 4.0) (fun sim ->
      let now = Sim.now sim in
      Vnic.Addr.Table.iter
        (fun _ s ->
          ignore
            (Flow_table.expire s.flows ~now ~on_expire:(fun _ _ ->
                 Smartnic.mem_release (Vswitch.nic vs) (flow_entry_bytes t))
              : int))
        t.served;
      true);
  t

let vswitch t = t.vs

let release_served t s =
  Flow_table.iter s.flows (fun _ _ ->
      Smartnic.mem_release (Vswitch.nic t.vs) (flow_entry_bytes t));
  Flow_table.clear s.flows;
  Smartnic.mem_release (Vswitch.nic t.vs) s.rule_bytes

let serve t ~vnic ~ruleset ~be =
  let addr = Vnic.addr vnic in
  (match Vnic.Addr.Table.find_opt t.served addr with
  | Some old -> release_served t old
  | None -> ());
  Vnic.Addr.Table.remove t.served addr;
  let bytes = Ruleset.memory_bytes ruleset in
  if Smartnic.mem_reserve (Vswitch.nic t.vs) bytes then begin
    let p = params t in
    let s =
      {
        vnic;
        ruleset;
        be;
        flows =
          Flow_table.create ~entry_overhead:0
            ~value_bytes:(fun _ -> flow_entry_bytes t)
            ~default_aging:p.Params.flow_aging ();
        rule_bytes = bytes;
      }
    in
    Vnic.Addr.Table.replace t.served addr s;
    Admission.ok
  end
  else Admission.no_memory

let unserve t addr =
  match Vnic.Addr.Table.find_opt t.served addr with
  | None -> ()
  | Some s ->
    release_served t s;
    Vnic.Addr.Table.remove t.served addr

(* The hosting process died: every served blob (pushed rules + cached
   flows) was in process/NIC memory and is gone, so its reservations
   must be released *now* to keep the SmartNIC ledger honest.  The Fe
   object survives — [reattach] rewires the packet hooks the vSwitch
   wipe cleared, and the controller re-[serve]s on reconciliation. *)
let reset t =
  Vnic.Addr.Table.iter (fun _ s -> release_served t s) t.served;
  Vnic.Addr.Table.reset t.served

let serves t addr = Vnic.Addr.Table.mem t.served addr
let served_count t = Vnic.Addr.Table.length t.served
let served_vnics t = Vnic.Addr.Table.fold (fun a _ acc -> a :: acc) t.served []

let set_be t addr be =
  match Vnic.Addr.Table.find_opt t.served addr with
  | Some s -> s.be <- be
  | None -> ()

let ruleset_of t addr =
  Option.map (fun s -> s.ruleset) (Vnic.Addr.Table.find_opt t.served addr)

let invalidate_cached_flows t addr =
  match Vnic.Addr.Table.find_opt t.served addr with
  | None -> ()
  | Some s ->
    let current = Ruleset.generation s.ruleset in
    let victims = ref [] in
    Flow_table.iter s.flows (fun k c -> if c.generation <> current then victims := k :: !victims);
    List.iter
      (fun k ->
        if Flow_table.remove s.flows k then
          Smartnic.mem_release (Vswitch.nic t.vs) (flow_entry_bytes t))
      !victims

let counters t = t.counters

let cached_flow_count t =
  Vnic.Addr.Table.fold (fun _ s acc -> acc + Flow_table.length s.flows) t.served 0

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  let prefix = "fe/" ^ Vswitch.name t.vs ^ "/" in
  let counter name c = T.attach_counter reg ~name:(prefix ^ name) c in
  counter "remote_cycles" t.counters.remote_cycles;
  counter "rule_lookups" t.counters.rule_lookups;
  counter "fast_hits" t.counters.fast_hits;
  counter "notify_sent" t.counters.notify_sent;
  counter "rx_forwarded" t.counters.rx_forwarded;
  counter "tx_finalized" t.counters.tx_finalized;
  counter "hop_acks_sent" t.counters.hop_acks_sent;
  T.register_gauge reg ~name:(prefix ^ "cached_flows") (fun () ->
      float_of_int (cached_flow_count t));
  T.register_gauge reg ~name:(prefix ^ "served_vnics") (fun () ->
      float_of_int (served_count t))
