(** Control-plane RPC policy: the latency/timeout/retry knobs shared by
    everything that issues management-path RPCs (today the controller's
    server RPCs; one record so new control-plane clients cannot diverge
    on retry behaviour). *)

type t = {
  latency : float;  (** mean RPC latency (the log-normal median) *)
  timeout : float;  (** declare an attempt lost after this long *)
  max_retries : int;  (** retries before giving up on a server *)
  backoff : float;
      (** exponential backoff base: retry [n] waits
          [timeout × backoff^n], capped at {!backoff_cap} *)
}

val default : t
(** 180 ms latency, 500 ms timeout, 4 retries, base-2 backoff. *)

val make :
  ?latency:float -> ?timeout:float -> ?max_retries:int -> ?backoff:float -> unit -> t
(** Build a policy, defaulting each field from {!default}.
    @raise Invalid_argument when [latency] or [timeout] is not positive,
    [max_retries] is negative, or [backoff] is below 1. *)

val backoff_cap : float
(** Ceiling on any single backoff wait (5 s). *)

val retry_delay : t -> attempt:int -> float
(** The wait before re-attempting after failed attempt number [attempt]
    (0-based): [min (timeout × backoff^attempt) backoff_cap].
    @raise Invalid_argument on a negative [attempt]. *)
