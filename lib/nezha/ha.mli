(** Epoch-fenced controller failover (DESIGN.md §13).

    A primary/standby {!Controller} pair shares one {!Controller.Registry}
    — the rendezvous for node-owned state (BE re-advertisements, FE
    service handles) that survives a controller crash by construction.
    A lease heartbeat watches the primary; after [lease_misses] missed
    beats the standby takes over: it bumps the epoch past the fleet's
    high-water mark, {e broadcasts} the new epoch to the gateway and
    every vSwitch (eager fencing — lazy fencing would leave components
    the new primary never touches willing to obey the old one), rebuilds
    offload intent from the registry, and starts its own report loop.

    A revived stale primary keeps its lower epoch, so every mutating
    command it issues is rejected by the fence: it is provably unable to
    flap placements (the split-brain test in [test_recovery.ml]). *)

open Nezha_fabric

type t

val create :
  ?lease_interval:float ->
  ?lease_misses:int ->
  fabric:Fabric.t ->
  primary:Controller.t ->
  standby:Controller.t ->
  unit ->
  t
(** Wire the pair: both controllers attach the shared registry and the
    standby starts fenced one epoch below the primary.  Call {!start}
    to begin the primary's report loop and the lease watchdog.
    @raise Invalid_argument if [primary == standby]. *)

val start : t -> unit

val crash_primary : t -> unit
(** Halt the primary process (it applies nothing further; its in-flight
    RPC replies are dropped).  The lease expires [lease_misses ×
    lease_interval] later and the standby takes over. *)

val revive_primary : t -> unit
(** Bring the crashed primary back with its stale in-memory state and
    stale epoch — the split-brain scenario the fence must contain. *)

val takeover : t -> unit
(** Force an immediate takeover (the watchdog calls this; exposed for
    tests). *)

val active : t -> Controller.t
(** The controller currently holding the highest epoch lease. *)

val primary : t -> Controller.t
val standby : t -> Controller.t
val registry : t -> Controller.Registry.t
val takeovers : t -> int
val epoch : t -> int
