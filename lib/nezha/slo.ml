(* Latency-SLO autoscaling decision core.  Pure state machine over the
   observed P99 — see slo.mli for the rule set and the rationale. *)

type config = {
  target_p99 : float;
  band : float;
  cooldown : float;
  warmup : float;
  min_pool : int;
  max_pool : int;
  max_step : int;
  suppress_fraction : float;
  suppress_hold : float;
}

let default_config =
  {
    target_p99 = 0.005;
    band = 0.20;
    cooldown = 10.0;
    warmup = 5.0;
    min_pool = 2;
    max_pool = 64;
    max_step = 2;
    suppress_fraction = 0.30;
    suppress_hold = 30.0;
  }

type reason =
  | Within_band
  | Above_target
  | Below_target
  | Cooling_down
  | Warming_up
  | No_signal
  | Suppressed
  | At_min
  | At_max

type decision = Scale_out of int | Scale_in of int | Hold of reason

let reason_code = function
  | Within_band -> 0
  | Above_target -> 1
  | Below_target -> 2
  | Cooling_down -> 3
  | Warming_up -> 4
  | No_signal -> 5
  | Suppressed -> 6
  | At_min -> 7
  | At_max -> 8

let decision_code = function Scale_out _ -> 1 | Scale_in _ -> -1 | Hold _ -> 0

let reason_of_decision = function
  | Scale_out _ -> Above_target
  | Scale_in _ -> Below_target
  | Hold r -> r

let pp_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Within_band -> "within-band"
    | Above_target -> "above-target"
    | Below_target -> "below-target"
    | Cooling_down -> "cooling-down"
    | Warming_up -> "warming-up"
    | No_signal -> "no-signal"
    | Suppressed -> "suppressed"
    | At_min -> "at-min"
    | At_max -> "at-max")

let pp_decision ppf = function
  | Scale_out n -> Format.fprintf ppf "scale-out+%d" n
  | Scale_in n -> Format.fprintf ppf "scale-in-%d" n
  | Hold r -> Format.fprintf ppf "hold(%a)" pp_reason r

type t = {
  config : config;
  born : float;
  mutable cooldown_until : float;
  mutable suppressed_until : float;
  mutable last_decision : decision option;
  mutable last_p99 : float option;
  mutable scale_outs : int;
  mutable scale_ins : int;
  mutable suppressed_ticks : int;
}

let validate c =
  if c.target_p99 <= 0. then invalid_arg "Slo.create: target_p99 <= 0";
  if c.band < 0. then invalid_arg "Slo.create: band < 0";
  if c.min_pool < 1 then invalid_arg "Slo.create: min_pool < 1";
  if c.max_pool < c.min_pool then invalid_arg "Slo.create: max_pool < min_pool";
  if c.max_step < 1 then invalid_arg "Slo.create: max_step < 1"

let create ?(config = default_config) ~now () =
  validate config;
  {
    config;
    born = now;
    cooldown_until = neg_infinity;
    suppressed_until = neg_infinity;
    last_decision = None;
    last_p99 = None;
    scale_outs = 0;
    scale_ins = 0;
    suppressed_ticks = 0;
  }

let config t = t.config
let last_decision t = t.last_decision
let last_p99 t = t.last_p99
let scale_outs t = t.scale_outs
let scale_ins t = t.scale_ins
let suppressed_ticks t = t.suppressed_ticks
let in_suppression t ~now = now < t.suppressed_until

let observe t ~now ~p99 ~pool ~suspects =
  let c = t.config in
  (match p99 with Some _ -> t.last_p99 <- p99 | None -> ());
  (* §C.2: a mostly-suspect pool means the latency signal reflects the
     failure, not demand — open (or extend) a suppression window. *)
  (if pool > 0 then
     let fraction = float_of_int suspects /. float_of_int pool in
     if fraction > c.suppress_fraction then
       t.suppressed_until <- now +. c.suppress_hold);
  let decide () =
    if now < t.suppressed_until then (
      t.suppressed_ticks <- t.suppressed_ticks + 1;
      Hold Suppressed)
    else if now -. t.born < c.warmup then Hold Warming_up
    else
      match p99 with
      | None -> Hold No_signal
      | Some p ->
          if now < t.cooldown_until then Hold Cooling_down
          else if p > c.target_p99 *. (1. +. c.band) then
            if pool >= c.max_pool then Hold At_max
            else begin
              let add = min c.max_step (c.max_pool - pool) in
              t.cooldown_until <- now +. c.cooldown;
              t.scale_outs <- t.scale_outs + 1;
              Scale_out add
            end
          else if p < c.target_p99 *. (1. -. c.band) then
            if pool <= c.min_pool then Hold At_min
            else begin
              let remove = min c.max_step (pool - c.min_pool) in
              t.cooldown_until <- now +. c.cooldown;
              t.scale_ins <- t.scale_ins + 1;
              Scale_in remove
            end
          else Hold Within_band
  in
  let d = decide () in
  t.last_decision <- Some d;
  d

let register_telemetry t ~prefix reg =
  let open Nezha_telemetry in
  let gauge name f = Telemetry.register_gauge reg ~name:(prefix ^ "/" ^ name) f in
  let counter name f =
    Telemetry.register_counter reg ~name:(prefix ^ "/" ^ name) f
  in
  gauge "target_p99_s" (fun () -> t.config.target_p99);
  gauge "observed_p99_s" (fun () ->
      match t.last_p99 with Some p -> p | None -> Float.nan);
  gauge "last_decision" (fun () ->
      match t.last_decision with
      | Some d -> float_of_int (decision_code d)
      | None -> Float.nan);
  gauge "last_reason" (fun () ->
      match t.last_decision with
      | Some d -> float_of_int (reason_code (reason_of_decision d))
      | None -> Float.nan);
  counter "scale_outs" (fun () -> t.scale_outs);
  counter "scale_ins" (fun () -> t.scale_ins);
  counter "suppressed_ticks" (fun () -> t.suppressed_ticks)
