(* FE candidate ordering (§4.2.1, App. B.1), shared by the online
   controller and the region-scale bridge.  Two policies: the paper's
   least-loaded ordering with same-ToR preference, and
   power-of-two-choices over a live load signal (ROADMAP item 4). *)

open Nezha_engine

type policy = Least_loaded | Power_of_two

let policy_name = function
  | Least_loaded -> "least_loaded"
  | Power_of_two -> "p2c"

module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable seeded : bool }

  let create ?(alpha = 0.3) () =
    if not (alpha > 0. && alpha <= 1.) then
      invalid_arg "Placement.Ewma.create: alpha outside (0, 1]";
    { alpha; value = 0.; seeded = false }

  let observe t x =
    if t.seeded then t.value <- t.value +. (t.alpha *. (x -. t.value))
    else begin
      t.value <- x;
      t.seeded <- true
    end

  let value t = t.value
end

let rec take n = function
  | [] -> []
  | _ :: _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let select ~eligible ~same_rack ~cpu ~count servers =
  let candidates = List.filter eligible servers in
  let near, far = List.partition same_rack candidates in
  let by_cpu l = List.sort (fun a b -> Float.compare (cpu a) (cpu b)) l in
  take count (by_cpu near @ by_cpu far)

(* Power-of-two-choices: draw two distinct candidates, keep the less
   loaded.  The classic result (Mitzenmacher) is that two random probes
   get exponentially better max-load than one while staying O(1) per
   decision — no global sort, no herd behaviour when every BE chases
   the same least-loaded server. *)
let p2c_pick ~rng ~load pool ~n =
  if n = 1 then 0
  else begin
    let i = Rng.int rng n in
    let j =
      let j = Rng.int rng (n - 1) in
      if j >= i then j + 1 else j
    in
    if load pool.(j) < load pool.(i) then j else i
  end

let drain ~rng ~load pool count =
  (* Repeated p2c picks without replacement: swap the winner to the
     tail and shrink the live prefix. *)
  let pool = Array.of_list pool in
  let live = ref (Array.length pool) in
  let picked = ref [] in
  let remaining = ref count in
  while !remaining > 0 && !live > 0 do
    let w = p2c_pick ~rng ~load pool ~n:!live in
    picked := pool.(w) :: !picked;
    live := !live - 1;
    pool.(w) <- pool.(!live);
    decr remaining
  done;
  List.rev !picked

let select_p2c ~rng ~eligible ~same_rack ~load ?(suspect = fun _ -> false)
    ?(load_band = 0.15) ~count servers =
  let candidates = List.filter eligible servers in
  let healthy, suspects = List.partition (fun s -> not (suspect s)) candidates in
  let min_load =
    List.fold_left (fun acc s -> Float.min acc (load s)) infinity healthy
  in
  (* App. B.1: stay in-rack while the local candidates are competitive;
     an overloaded rack must not capture placement just by proximity. *)
  let near, far =
    List.partition
      (fun s -> same_rack s && load s <= min_load +. load_band)
      healthy
  in
  let rec fill acc count = function
    | [] -> List.rev acc
    | _ when count = 0 -> List.rev acc
    | tier :: rest ->
        let picked = drain ~rng ~load tier count in
        fill (List.rev_append picked acc) (count - List.length picked) rest
  in
  fill [] count [ near; far; suspects ]
