(* FE candidate ordering (§4.2.1, App. B.1), shared by the online
   controller and the region-scale bridge: among eligible servers,
   same-ToR-as-the-BE first, each tier ordered by reported CPU
   (least-loaded first). *)

let rec take n = function
  | [] -> []
  | _ :: _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let select ~eligible ~same_rack ~cpu ~count servers =
  let candidates = List.filter eligible servers in
  let near, far = List.partition same_rack candidates in
  let by_cpu l = List.sort (fun a b -> Float.compare (cpu a) (cpu b)) l in
  take count (by_cpu near @ by_cpu far)
