(** Latency-SLO autoscaling decisions (ROADMAP item 4, after Meili).

    The paper's controller scales the FE pool on a CPU threshold; the
    production interface is a latency budget.  This module is the pure
    decision core: feed it the observed P99 remote-hop latency each
    report tick and it answers scale-out / scale-in / hold, with the
    anti-flap rules that make the loop safe to wire to a real pool:

    - {b hysteresis}: a dead band around the target — only a P99 above
      [target ×(1 + band)] scales out, only one below
      [target ×(1 - band)] scales in, so noise inside the band never
      moves the pool;
    - {b cooldown}: after any resize the loop holds for [cooldown]
      seconds so the previous decision's effect is visible in the
      signal before the next one;
    - {b warmup}: no decision before [warmup] seconds of signal, so a
      cold start does not scale on garbage;
    - {b mass-failure suppression} (§C.2, PR 3): when more than
      [suppress_fraction] of the pool is simultaneously suspect the
      latency signal is assumed to reflect the failure, not demand, and
      decisions are suppressed for [suppress_hold] seconds;
    - {b serving floor / ceiling}: scale-in never drops the pool below
      [min_pool]; scale-out never exceeds [max_pool]; either direction
      moves at most [max_step] servers per decision.

    The module is pure state-machine logic over numbers — no sim, no
    I/O — so the decision table is unit-testable without a cluster. *)

type config = {
  target_p99 : float;  (** latency budget, seconds *)
  band : float;  (** hysteresis half-width as a fraction of target *)
  cooldown : float;  (** seconds to hold after a resize *)
  warmup : float;  (** seconds of signal required before first decision *)
  min_pool : int;  (** serving minimum — scale-in floor *)
  max_pool : int;  (** scale-out ceiling *)
  max_step : int;  (** max servers added/removed per decision *)
  suppress_fraction : float;
      (** suspect fraction of the pool above which decisions are
          suppressed (§C.2) *)
  suppress_hold : float;  (** seconds a suppression window lasts *)
}

val default_config : config
(** 5 ms target, 20% band, 10 s cooldown, 5 s warmup, pool 2..64,
    2 per step, suppress above 30% suspects for 30 s. *)

type reason =
  | Within_band  (** P99 inside the hysteresis band *)
  | Above_target  (** P99 above the band — wants capacity *)
  | Below_target  (** P99 below the band — capacity to spare *)
  | Cooling_down  (** a resize is still settling *)
  | Warming_up  (** not enough signal yet *)
  | No_signal  (** no P99 sample this tick *)
  | Suppressed  (** mass-failure window active (§C.2) *)
  | At_min  (** wants in, already at the serving minimum *)
  | At_max  (** wants out, already at the ceiling *)

type decision = Scale_out of int | Scale_in of int | Hold of reason

val reason_code : reason -> int
(** Stable small-int encoding for telemetry gauges. *)

val decision_code : decision -> int
(** -1 scale-in, 0 hold, 1 scale-out. *)

val reason_of_decision : decision -> reason

val pp_decision : Format.formatter -> decision -> unit

type t

val create : ?config:config -> now:float -> unit -> t
(** [now] anchors the warmup clock. *)

val config : t -> config

val observe :
  t ->
  now:float ->
  p99:float option ->
  pool:int ->
  suspects:int ->
  decision
(** One report tick: [p99] is the observed P99 remote-hop latency over
    the last window (None when the window held no remote hops), [pool]
    the current FE pool size, [suspects] how many pool members are
    currently suspected unhealthy.  Returns the decision; the caller
    applies it (or not — the state machine only assumes it was applied
    when it actually changed the pool, which the next [observe] sees
    via [pool]). *)

(* Introspection for telemetry and tests. *)

val last_decision : t -> decision option
val last_p99 : t -> float option
val scale_outs : t -> int
val scale_ins : t -> int
val suppressed_ticks : t -> int
val in_suppression : t -> now:float -> bool

val register_telemetry :
  t -> prefix:string -> Nezha_telemetry.Telemetry.t -> unit
(** Publish [<prefix>/target_p99_s], [observed_p99_s], [last_decision]
    (-1/0/1), [last_reason] (see {!reason_code}), [scale_outs],
    [scale_ins], [suppressed_ticks]. *)
