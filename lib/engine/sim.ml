type handle = { mutable alive : bool }

(* Event records are mutable and recycled through a per-simulation free
   list: the hot loop (pop, run, schedule) reuses the same records
   instead of allocating one per scheduled event.  A record is owned by
   the heap while queued and by the pool while free; nothing else may
   hold on to one. *)
type event = {
  mutable time : float;
  mutable order : int;
  mutable ev_handle : handle;
  mutable action : t -> unit;
}

and t = {
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  queue : event Heap.t;
  mutable pool : event array; (* stack of recycled event records *)
  mutable pool_n : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  timer_tick : float;
  timer_slots : int;
  mutable wheel : (t -> unit) Timer_wheel.t option; (* created lazily *)
  mutable shard : shard option;
}

and shard = { cluster : cluster; shard_id : int; mutable msg_seq : int }

and cluster = {
  members : t array;
  lookahead : float;
  mail : msg list ref array; (* per destination shard, newest first *)
  mutable delivered : int;
}

and msg = { at_time : float; src : int; mseq : int; act : t -> unit }

type timer = (t -> unit) Timer_wheel.timer

let dead_handle = { alive = false }
let no_action : t -> unit = fun _ -> ()
let dummy_event = { time = 0.0; order = 0; ev_handle = dead_handle; action = no_action }

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.order b.order

let create ?(capacity = 256) ?(timer_tick = 1e-3) ?(timer_slots = 1024) () =
  if timer_tick <= 0.0 then invalid_arg "Sim.create: timer_tick must be positive";
  if timer_slots <= 0 then invalid_arg "Sim.create: timer_slots must be positive";
  {
    clock = 0.0;
    seq = 0;
    executed = 0;
    queue = Heap.create ~capacity ~cmp:cmp_event ();
    pool = [||];
    pool_n = 0;
    pool_hits = 0;
    pool_misses = 0;
    timer_tick;
    timer_slots;
    wheel = None;
    shard = None;
  }

let now t = t.clock

let alloc_event t ~time ~handle ~action =
  t.seq <- t.seq + 1;
  if t.pool_n > 0 then begin
    t.pool_n <- t.pool_n - 1;
    let ev = t.pool.(t.pool_n) in
    t.pool.(t.pool_n) <- dummy_event;
    ev.time <- time;
    ev.order <- t.seq;
    ev.ev_handle <- handle;
    ev.action <- action;
    t.pool_hits <- t.pool_hits + 1;
    ev
  end
  else begin
    t.pool_misses <- t.pool_misses + 1;
    { time; order = t.seq; ev_handle = handle; action }
  end

let recycle_event t ev =
  (* Clear the closure and handle slots so the pool never keeps dead
     captures alive. *)
  ev.ev_handle <- dead_handle;
  ev.action <- no_action;
  let cap = Array.length t.pool in
  if t.pool_n = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let np = Array.make ncap dummy_event in
    Array.blit t.pool 0 np 0 cap;
    t.pool <- np
  end;
  t.pool.(t.pool_n) <- ev;
  t.pool_n <- t.pool_n + 1

let pool_stats t = (t.pool_hits, t.pool_misses)

let enqueue t ~time ~handle action =
  Heap.push t.queue (alloc_event t ~time ~handle ~action)

let at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let handle = { alive = true } in
  enqueue t ~time ~handle action;
  handle

let schedule t ~delay action =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(t.clock +. delay) action

let cancel _t handle = handle.alive <- false

let cancelled handle = not handle.alive

let every t ~period ?(jitter = fun () -> 0.0) f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  (* One handle and one tick closure serve every firing: each period
     re-arms by re-enqueueing a pooled event record rather than
     allocating a fresh closure + handle pair. *)
  let handle = { alive = true } in
  let rec tick sim =
    if f sim then begin
      let delay = period +. jitter () in
      let delay = if delay < 0.0 then 0.0 else delay in
      handle.alive <- true;
      enqueue sim ~time:(sim.clock +. delay) ~handle tick
    end
  in
  enqueue t ~time:t.clock ~handle tick

(* ---- wheel-backed timers ------------------------------------------- *)

let get_wheel t =
  match t.wheel with
  | Some w -> w
  | None ->
    let w = Timer_wheel.create ~tick:t.timer_tick ~slots:t.timer_slots in
    (* Skip the cursor up to the current clock while the wheel is still
       empty, so the first real sweep doesn't walk every slot since 0. *)
    if t.clock > 0.0 then ignore (Timer_wheel.advance w ~now:t.clock (fun _ -> ()) : int);
    t.wheel <- Some w;
    w

let timeout t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  let w = get_wheel t in
  Timer_wheel.add w ~now:t.clock ~deadline:(t.clock +. delay) f

let cancel_timer timer = Timer_wheel.cancel timer

let timer_cancelled timer = Timer_wheel.cancelled timer

(* ---- the engine turn ------------------------------------------------ *)

let heap_next t = match Heap.peek t.queue with None -> infinity | Some ev -> ev.time

let wheel_next t =
  match t.wheel with
  | Some w when Timer_wheel.pending w > 0 -> Timer_wheel.next_sweep_at w
  | _ -> infinity

let next_event_time t = Float.min (heap_next t) (wheel_next t)

let run_heap_event t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    let h = ev.ev_handle in
    let act = ev.action in
    recycle_event t ev;
    if h.alive then begin
      h.alive <- false;
      t.executed <- t.executed + 1;
      act t
    end;
    true

let run_wheel_slot t =
  match t.wheel with
  | None -> ()
  | Some w ->
    let boundary = Timer_wheel.next_sweep_at w in
    let now' = if boundary > t.clock then boundary else t.clock in
    t.clock <- now';
    ignore
      (Timer_wheel.advance w ~now:now' (fun act ->
           t.executed <- t.executed + 1;
           act t)
        : int)

(* One engine turn: either sweep the next due wheel slot or pop one heap
   event, whichever comes first (wheel wins ties so coarse timers never
   lag an equal-time event). *)
let step t =
  let hn = heap_next t and wn = wheel_next t in
  if hn = infinity && wn = infinity then false
  else begin
    if wn <= hn then run_wheel_slot t else ignore (run_heap_event t : bool);
    true
  end

(* Core loop shared by [run] and the sharded window executor: execute
   turns while the next event time is [< limit_ex] and [<= limit_in].
   [max_events] may overshoot by at most the contents of one wheel
   slot. *)
let exec t ~limit_ex ~limit_in ~fits_budget =
  let rec loop () =
    if fits_budget t then begin
      let nxt = next_event_time t in
      if nxt < limit_ex && nxt <= limit_in then
        if step t then loop ()
    end
  in
  loop ()

let run ?until ?max_events t =
  let fits_budget =
    match max_events with
    | None -> fun _ -> true
    | Some m -> fun t -> t.executed < m
  in
  let limit_in = match until with None -> infinity | Some u -> u in
  exec t ~limit_ex:infinity ~limit_in ~fits_budget;
  match until with
  | Some stop when t.clock < stop && next_event_time t > stop -> t.clock <- stop
  | Some _ | None -> ()

let pending t =
  Heap.length t.queue
  + (match t.wheel with Some w -> Timer_wheel.pending w | None -> 0)

let events_executed t = t.executed

(* ---- sharded conservative-sync cluster ------------------------------ *)

module Sharded = struct
  type nonrec cluster = cluster

  let create ?capacity ?timer_tick ?timer_slots ~shards ~lookahead () =
    if shards <= 0 then invalid_arg "Sim.Sharded.create: shards must be positive";
    if lookahead <= 0.0 then
      invalid_arg "Sim.Sharded.create: lookahead must be positive";
    let members =
      Array.init shards (fun _ -> create ?capacity ?timer_tick ?timer_slots ())
    in
    let c =
      {
        members;
        lookahead;
        mail = Array.init shards (fun _ -> ref []);
        delivered = 0;
      }
    in
    Array.iteri
      (fun i m -> m.shard <- Some { cluster = c; shard_id = i; msg_seq = 0 })
      members;
    c

  let shard c i = c.members.(i)
  let shard_count c = Array.length c.members
  let lookahead c = c.lookahead
  let shard_id t = match t.shard with None -> None | Some s -> Some s.shard_id
  let messages_delivered c = c.delivered

  let send src ~dst ~delay act =
    match src.shard with
    | None -> ignore (schedule src ~delay act : handle)
    | Some sh ->
      let c = sh.cluster in
      if dst < 0 || dst >= Array.length c.members then
        invalid_arg "Sim.Sharded.send: no such shard";
      if dst = sh.shard_id then ignore (schedule src ~delay act : handle)
      else begin
        if delay < c.lookahead then
          invalid_arg "Sim.Sharded.send: cross-shard delay below lookahead";
        sh.msg_seq <- sh.msg_seq + 1;
        let box = c.mail.(dst) in
        box :=
          { at_time = src.clock +. delay; src = sh.shard_id; mseq = sh.msg_seq; act }
          :: !box
      end

  let cmp_msg a b =
    let c = Float.compare a.at_time b.at_time in
    if c <> 0 then c
    else
      let c = Int.compare a.src b.src in
      if c <> 0 then c else Int.compare a.mseq b.mseq

  (* Drain every mailbox into its destination heap.  Messages are sorted
     by (arrival time, source shard, source sequence) so the delivery
     order — and hence the destination's tie-breaking sequence numbers —
     is independent of the order shards executed in. *)
  let deliver c =
    Array.iteri
      (fun d box ->
        match !box with
        | [] -> ()
        | msgs ->
          box := [];
          let sorted = List.sort cmp_msg msgs in
          let dst = c.members.(d) in
          List.iter
            (fun m ->
              c.delivered <- c.delivered + 1;
              ignore (at dst ~time:m.at_time m.act : handle))
            sorted)
      c.mail

  let always _ = true

  let run ?until c =
    let stop = match until with None -> infinity | Some u -> u in
    let rec loop () =
      deliver c;
      let m =
        Array.fold_left
          (fun acc s -> Float.min acc (next_event_time s))
          infinity c.members
      in
      if m = infinity || m > stop then begin
        match until with
        | Some u ->
          Array.iter (fun s -> if s.clock < u then s.clock <- u) c.members
        | None -> ()
      end
      else begin
        (* Conservative window [m, m + lookahead): any cross-shard send
           from inside the window arrives at >= m + lookahead, so every
           shard may execute the whole window without hearing from the
           others. *)
        let wend = m +. c.lookahead in
        Array.iter
          (fun s -> exec s ~limit_ex:wend ~limit_in:stop ~fits_budget:always)
          c.members;
        loop ()
      end
    in
    loop ()

  let now c =
    Array.fold_left (fun acc s -> Float.min acc s.clock) infinity c.members

  let pending c = Array.fold_left (fun acc s -> acc + pending s) 0 c.members

  let events_executed c =
    Array.fold_left (fun acc s -> acc + s.executed) 0 c.members
end

let cross src dst ~delay act =
  if src == dst then ignore (schedule src ~delay act : handle)
  else
    match (src.shard, dst.shard) with
    | Some a, Some b when a.cluster == b.cluster ->
      Sharded.send src ~dst:b.shard_id ~delay act
    | _ -> invalid_arg "Sim.cross: simulations are not in the same cluster"
