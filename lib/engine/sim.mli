(** Discrete-event simulation core.

    A simulation owns a virtual clock and two event sources: a binary
    heap for exact-time events and a lazily created timer wheel for
    coarse mass timers ([timeout]).  Events scheduled for the same
    instant fire in scheduling order (a monotone sequence number breaks
    ties), which keeps runs deterministic.

    The hot path allocates almost nothing: event records are recycled
    through a per-simulation pool, [every] reuses one closure and one
    handle across all firings, and wheel timers bypass the heap
    entirely.

    For region-scale runs, {!Sharded} partitions work across several
    simulations advanced in conservative-sync windows (see DESIGN.md
    §10). *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

type timer
(** A wheel-backed coarse timer (see {!timeout}). *)

val create :
  ?capacity:int -> ?timer_tick:float -> ?timer_slots:int -> unit -> t
(** A fresh simulation with the clock at 0.  [capacity] pre-sizes the
    event heap (default 256).  [timer_tick] / [timer_slots] configure
    the wheel behind {!timeout} (defaults 1 ms x 1024 slots); the wheel
    itself is only allocated on first use. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays
    are clamped to 0 (fire "now", after currently queued same-time
    events). *)

val at : t -> time:float -> (t -> unit) -> handle
(** Absolute-time variant.  Times before [now] are clamped to [now]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val timeout : t -> delay:float -> (t -> unit) -> timer
(** [timeout t ~delay f] schedules [f] on the timer wheel: O(1) insert
    and no heap traffic, at the cost of coarse granularity — [f] fires
    at the first wheel-slot boundary at or after [now +. delay] (within
    one [timer_tick] of the deadline).  Use for mass per-flow /
    per-retransmit timers; use [schedule] when exact timing matters. *)

val cancel_timer : timer -> unit
(** O(1); fired or already-cancelled timers are no-ops. *)

val timer_cancelled : timer -> bool

val every : t -> period:float -> ?jitter:(unit -> float) -> (t -> bool) -> unit
(** [every t ~period f] runs [f] now and then every [period] (plus
    [jitter ()] if given) until [f] returns [false].  All firings share
    one tick closure and one handle; re-arming recycles a pooled event
    record, so a periodic task allocates nothing per period.
    @raise Invalid_argument if [period <= 0]. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain both event sources in time order.  Stops when nothing is
    pending, when the next event would fire after [until], or after
    [max_events] events ([max_events] may overshoot by the contents of
    one wheel slot).  When stopped by [until], the clock is advanced to
    [until] exactly. *)

val step : t -> bool
(** Execute one engine turn — the next heap event or the next due wheel
    slot, whichever is earlier (the wheel wins ties).  [false] when
    nothing is pending. *)

val pending : t -> int
(** Events still queued (including cancelled placeholders) plus live
    wheel timers. *)

val events_executed : t -> int
(** Events run so far; wheel timers count when they fire. *)

val pool_stats : t -> int * int
(** [(reused, fresh)] event-record allocations — observability for the
    pooling discipline (a warm simulation should reuse almost always). *)

val cross : t -> t -> delay:float -> (t -> unit) -> unit
(** [cross src dst ~delay f] schedules [f] on [dst] at
    [now src +. delay].  When [src] and [dst] are the same simulation
    this is a plain [schedule]; when they are distinct shards of the
    same {!Sharded.cluster} the event goes through the cross-shard
    mailbox (and [delay] must be at least the cluster lookahead).
    @raise Invalid_argument for unrelated simulations. *)

(** Sharded conservative-sync execution.

    A cluster partitions the workload across [shards] independent
    simulations.  Time advances in windows of width [lookahead]: each
    iteration delivers queued cross-shard messages, finds the minimum
    next-event time [m] across shards, and lets every shard execute all
    its events in [[m, m + lookahead)].  This is safe because a
    cross-shard message sent from inside the window (clock >= m, delay
    >= lookahead) arrives at or after the window's end — no shard can
    receive an event "from the past".

    Determinism: mailbox delivery is sorted by (arrival time, source
    shard, source sequence), so a given cluster layout replays
    identically for a given seed.  Runs are additionally independent of
    the shard {e count} iff all cross-shard interaction goes through
    [send]/[cross] with delay >= lookahead and same-time deliveries
    commute (e.g. counter updates, per-flow state keyed by source) —
    see DESIGN.md §10 for the full contract. *)
module Sharded : sig
  type cluster

  val create :
    ?capacity:int ->
    ?timer_tick:float ->
    ?timer_slots:int ->
    shards:int ->
    lookahead:float ->
    unit ->
    cluster
  (** [lookahead] must be a lower bound on every cross-shard
      scheduling delay (for a rack-partitioned fabric: the minimum
      cross-rack hop latency).
      @raise Invalid_argument if [shards <= 0] or [lookahead <= 0]. *)

  val shard : cluster -> int -> t
  val shard_count : cluster -> int
  val lookahead : cluster -> float

  val shard_id : t -> int option
  (** The shard index of a member simulation; [None] for a standalone
      simulation. *)

  val send : t -> dst:int -> delay:float -> (t -> unit) -> unit
  (** [send src ~dst ~delay f] schedules [f] on shard [dst] at
      [now src +. delay].  Same-shard (or unclustered) sends degrade to
      a plain [schedule]; cross-shard sends go through the mailbox.
      @raise Invalid_argument if [dst] is out of range or a cross-shard
      [delay] is below the cluster lookahead. *)

  val run : ?until:float -> cluster -> unit
  (** Advance every shard in conservative-sync windows until nothing is
      pending (or the next window would start after [until], in which
      case all clocks park at [until]). *)

  val now : cluster -> float
  (** Minimum clock across shards — a lower bound on global time. *)

  val pending : cluster -> int
  val events_executed : cluster -> int

  val messages_delivered : cluster -> int
  (** Cross-shard mailbox messages delivered so far. *)
end
