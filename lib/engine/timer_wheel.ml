type 'a timer = {
  mutable state : [ `Pending | `Cancelled | `Fired ];
  deadline : float;
  value : 'a;
  owner : 'a t;
}

and 'a t = {
  tick : float;
  slots : int;
  wheel : 'a timer list array; (* per-slot buckets, unordered *)
  (* Absolute slot index since t=0; the concrete slot is
     [cursor_abs mod slots] and the window start is
     [float cursor_abs *. tick].  Deriving every boundary from the
     integer counter (rather than accumulating [+. tick]) keeps slot
     boundaries bit-identical no matter how the wheel was advanced —
     which the sharded simulator relies on for cross-shard-count
     determinism. *)
  mutable cursor_abs : int;
  mutable live : int;
}

let create ~tick ~slots =
  if tick <= 0.0 then invalid_arg "Timer_wheel.create: tick must be positive";
  if slots <= 0 then invalid_arg "Timer_wheel.create: slots must be positive";
  { tick; slots; wheel = Array.make slots []; cursor_abs = 0; live = 0 }

let next_sweep_at t = float_of_int (t.cursor_abs + 1) *. t.tick

let add t ~now ~deadline value =
  let deadline = if deadline < now then now else deadline in
  let timer = { state = `Pending; deadline; value; owner = t } in
  (* Place by absolute slot index, clamped to the cursor so a deadline
     whose natural slot has already been swept lands in the very next
     sweep instead of waiting a full revolution. *)
  let k = int_of_float (deadline /. t.tick) in
  let k = if k < t.cursor_abs then t.cursor_abs else k in
  let s = k mod t.slots in
  t.wheel.(s) <- timer :: t.wheel.(s);
  t.live <- t.live + 1;
  timer

(* Cancellation is O(1): the timer stays in its slot and the sweep
   discards it lazily, but the live count drops immediately. *)
let cancel timer =
  if timer.state = `Pending then begin
    timer.state <- `Cancelled;
    timer.owner.live <- timer.owner.live - 1
  end

let cancelled timer = timer.state = `Cancelled

let payload timer = timer.value

let advance t ~now f =
  let fired = ref 0 in
  (* Sweep whole slots whose time window has fully passed; within each,
     fire due timers and retain the rest (they belong to later
     revolutions). *)
  let sweep_slot s =
    let keep =
      List.filter
        (fun timer ->
          match timer.state with
          | `Cancelled | `Fired -> false
          | `Pending ->
            if timer.deadline <= now then begin
              timer.state <- `Fired;
              t.live <- t.live - 1;
              incr fired;
              f timer.value;
              false
            end
            else true)
        t.wheel.(s)
    in
    t.wheel.(s) <- keep
  in
  let rec loop () =
    if float_of_int (t.cursor_abs + 1) *. t.tick <= now then begin
      if t.live = 0 then begin
        (* Nothing can fire: fast-forward the cursor to just short of
           [now] instead of sweeping every empty slot on the way.  Stale
           (cancelled/fired) records left in skipped slots are filtered
           by state on a later sweep. *)
        let target = int_of_float (now /. t.tick) - 1 in
        if target > t.cursor_abs then t.cursor_abs <- target
      end;
      sweep_slot (t.cursor_abs mod t.slots);
      t.cursor_abs <- t.cursor_abs + 1;
      loop ()
    end
  in
  loop ();
  !fired

let pending t = t.live
