(** Hashed timer wheel for mass expirations.

    The session table ages out millions of entries; a binary-heap timer per
    entry would dominate the event queue.  A timer wheel gives O(1)
    insert/cancel and amortised O(1) expiry at a fixed tick granularity,
    which matches how flow-aging hardware works (coarse timestamps, lazy
    sweeps). *)

type 'a t

type 'a timer
(** A scheduled expiration carrying a payload of type ['a]. *)

val create : tick:float -> slots:int -> 'a t
(** [create ~tick ~slots] covers a horizon of [tick *. slots] seconds per
    revolution; longer deadlines simply survive extra revolutions.
    @raise Invalid_argument if [tick <= 0] or [slots <= 0]. *)

val add : 'a t -> now:float -> deadline:float -> 'a -> 'a timer
(** Schedule [payload] to expire at the first slot boundary at or after
    [deadline] — within one tick of it.  Deadlines in the past (below
    [now], or in an already-swept slot) fire on the next sweep. *)

val cancel : 'a timer -> unit
(** O(1); expired or already-cancelled timers are no-ops. *)

val cancelled : 'a timer -> bool

val payload : 'a timer -> 'a

val next_sweep_at : 'a t -> float
(** Earliest time at which [advance] would sweep another slot, i.e. the
    end of the cursor's current window.  A conservative lower bound on
    the next expiry: no pending timer can fire strictly before it.
    Slot boundaries are exact multiples of [tick] (derived from an
    integer slot counter), so the value is identical however the wheel
    was advanced to its current position. *)

val advance : 'a t -> now:float -> ('a -> unit) -> int
(** [advance t ~now f] fires [f] on every timer whose deadline is
    [<= now], in deadline-slot order; returns the count fired.  Must be
    called with monotonically non-decreasing [now]. *)

val pending : 'a t -> int
(** Live (non-cancelled, non-fired) timers. *)
