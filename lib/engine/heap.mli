(** Array-backed binary min-heap, specialised by a comparison function.

    Used as the event queue of the simulator: O(log n) insert and
    extract-min, O(1) peek, amortised O(1) space reuse. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp] makes an empty heap ordered by [cmp] (smallest first).
    [capacity] is a pre-sizing hint for the first backing allocation;
    growth past it stays amortised (doubling). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removal. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection in tests). *)
