(** Statistical model of a production region: O(10K) vSwitches with
    heavy-tailed load.

    The paper's Figs. 2–4, 13, 15 and Table 1 are fleet telemetry, not
    testbed measurements, so this module synthesizes a fleet whose
    marginal distributions are *quantile-matched* to the published
    percentiles: the quantile functions interpolate (log-linearly)
    through the paper's anchor points — Fig. 4's CPU/memory utilization
    percentiles and Table 1's demand-share percentiles.  Sampling u ~
    U(0,1) through these functions reproduces the published tails by
    construction; everything downstream (overload classification, the
    hotspot mix, Nezha's effect on daily overloads) is then derived, not
    assumed. *)

open Nezha_engine

(** {1 Calibrated quantile functions} *)

val cpu_util_quantile : float -> float
(** Fig. 4a anchors: avg ≈5%, P90 15%, P99 41%, P999 68%, P9999 90%. *)

val mem_util_quantile : float -> float
(** Fig. 4b anchors: avg ≈1.5%, P90 15%, P99 34%, P999 93%, P9999 96%. *)

val cps_demand_quantile : float -> float
(** Table 1 (normalized to the P9999 user = 1.0): P50 0.53%, P90 1.41%,
    P99 6.41%, P999 18.38%. *)

val flows_demand_quantile : float -> float
val vnics_demand_quantile : float -> float

(** {1 Fleet sampling} *)

type profile = {
  cpu : float;  (** vSwitch CPU utilization, \[0,1\] *)
  mem : float;
  cps : float;  (** demand, normalized to the fleet max = 1.0 *)
  flows : float;
  vnics : float;
}

val sample : Rng.t -> profile
val sample_fleet : Rng.t -> n:int -> profile array

val poisson : Rng.t -> float -> int
(** Knuth's product method — small means only (used for per-hotspot
    daily event counts, here and in {!Region_sim}). *)

(** {1 Overload classification (Fig. 3)} *)

type cause = Cps | Flows | Vnics

val pp_cause : Format.formatter -> cause -> unit

type capacities = { cps_cap : float; flows_cap : float; vnics_cap : float }

val default_capacities : capacities
(** Normalized per-vSwitch capability thresholds, placed so the hotspot
    mix lands near the paper's 61% / 30% / 9%. *)

val classify : capacities -> profile array -> (cause * int) list
(** Overloaded vSwitches per cause (a vSwitch can appear under several
    causes if it exceeds several capacities). *)

(** {1 Daily overloads before/after Nezha (Fig. 13)} *)

type day = { before : int; after : int }

val daily_overloads :
  Rng.t ->
  n_vswitches:int ->
  capacities:capacities ->
  cause:cause ->
  days:int ->
  ?events_per_hotspot_per_day:float ->
  ?ramp_median_s:float ->
  ?activation_p50_ms:float ->
  unit ->
  day list
(** Each hotspot produces Poisson-many overload events per day.  With
    Nezha, an event still *occurs* only when the demand spike ramps
    faster than offload activation completes (§6.3.3); #vNIC overloads
    never occur because rule tables are created directly on FEs. *)

(** {1 State sizes (Fig. 15)} *)

val state_size_samples : Rng.t -> n:int -> float array
(** Per-session encoded state sizes drawn from a production-like NF mix,
    measured with the real {!Nezha_vswitch.State} codec. *)

(** {1 High-CPS VMs (Fig. 2)} *)

val high_cps_vm_sample : Rng.t -> n:int -> (float * float) array
(** [(vm_cpu, vswitch_cpu)] pairs for VMs whose CPS demand saturates
    their SmartNIC: the vSwitch side is ≥95% busy while most VMs sit
    under 60%. *)

(** {1 VM live migration (Fig. A1)} *)

val migration_downtime_s : Rng.t -> vcpus:int -> mem_gb:int -> float
val migration_completion_s : Rng.t -> vcpus:int -> mem_gb:int -> float
