open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
module Placement = Nezha_core.Placement

(* Region-scale bridge: thousands of real vSwitches (one per server,
   rack-aligned onto the shards of a [Sim.Sharded] cluster) driven by
   Region-sampled demand profiles, with a fleet controller on shard 0
   doing Nezha offload placement against them.  The headline output is
   Fig. 13/15's "overloads before/after Nezha", measured from the event
   simulation — an overload *occurs* only when a demand spike outruns
   report -> detect -> place -> push -> activate.

   Shard-isolation contract (DESIGN.md §10): every cross-server
   interaction is a [Sharded.send] with delay >= the cluster lookahead,
   which here is the control-plane RPC latency — reports up to the
   controller, activation pushes back down.  Demand ticks, flow-churn
   timers and overload accounting are purely shard-local; the only
   cross-shard *reads* are of data frozen at setup (profiles, spike
   schedules, topology).  That makes runs independent of the shard
   count, not just replayable. *)

type engine = Heap_events | Wheel_events

type config = {
  racks : int;
  servers_per_rack : int;
  shards : int;
  engine : engine;
  seed : int;
  duration : float;  (** one compressed "day", sim seconds *)
  tick : float;  (** demand-evaluation period per server *)
  flow_timers : int;  (** sampled live-flow churn timers per server *)
  flow_mean : float;  (** mean flow lifetime driving churn *)
  nezha : bool;  (** controller acts (false = "before" run) *)
  report_interval : float;
  scan_interval : float;
  ctl_latency : float;  (** control-plane RPC latency = cluster lookahead *)
  num_fes : int;
  keep_share : float;  (** demand share the BE keeps once offloaded *)
  offload_threshold : float;
  overload_level : float;
  fe_cpu_max : float;
  fe_mem_max : float;
  hotspot_quantile : float;  (** CPS quantile above which spikes occur *)
  spikes_per_day : float;  (** Poisson mean per hotspot (Fig. 13) *)
  ramp_median : float;  (** compressed spike ramp median, seconds *)
  ramp_sigma : float;
  hold : float;  (** time a spike holds its peak *)
  push_bytes_per_s : float;  (** rule/state push bandwidth (§4.2.1) *)
  rpc_rtt : float;
  (* --- crash-storm chaos (DESIGN.md §13) --- *)
  crash_rate : float;  (** Poisson mean crashes per server per day (0 = off) *)
  reboot_delay : float;  (** crash -> process back up *)
  resync_delay : float;  (** controller re-push latency on re-advertisement *)
  ctl_crash_at : float option;  (** primary controller crash instant *)
  ctl_failover : float;  (** lease expiry -> standby takeover delay *)
}

let default_config =
  {
    racks = 250;
    servers_per_rack = 8;
    shards = 8;
    engine = Wheel_events;
    seed = 42;
    duration = 30.0;
    tick = 0.02;
    flow_timers = 16;
    flow_mean = 1.0;
    nezha = true;
    report_interval = 0.25;
    scan_interval = 0.25;
    ctl_latency = 0.01;
    num_fes = 4;
    keep_share = 0.3;
    offload_threshold = 0.70;
    overload_level = 0.95;
    fe_cpu_max = 0.30;
    fe_mem_max = 0.50;
    hotspot_quantile = 0.97;
    spikes_per_day = 3.0;
    ramp_median = 12.0;
    ramp_sigma = 0.8;
    hold = 3.0;
    push_bytes_per_s = 200e6;
    rpc_rtt = 0.002;
    crash_rate = 0.0;
    reboot_delay = 1.0;
    resync_delay = 0.1;
    ctl_crash_at = None;
    ctl_failover = 1.0;
  }

type result = {
  servers : int;
  vswitches : int;
  vnics_modeled : int;
  flows_modeled : int;
  hotspots : int;
  events : int;  (** simulation events executed, cluster-wide *)
  messages : int;  (** cross-shard mailbox deliveries *)
  ticks : int;
  flow_expiries : int;
  overloads : int;  (** overload episodes (Fig. 13 occurrences) *)
  overload_ticks : int;
  detections : int;
  activations : int;
  packets_modeled : float;  (** demand-rate x time packet proxy *)
  pool_reused : int;
  pool_fresh : int;
  crashes : int;  (** server crash events executed (storm) *)
  restarts : int;  (** reboot completions *)
  mttr_p50 : float;  (** crash -> intent fully restored, seconds *)
  mttr_p99 : float;
  blackholed_ticks : int;  (** demand ticks evaluated while the server was down *)
  late_blackholed : int;
      (** blackholed ticks after the convergence deadline — must be 0 *)
  ctl_takeovers : int;  (** standby takeovers after a primary crash *)
  digest : int;  (** order-insensitive run fingerprint *)
}

type spike = { t0 : float; ramp : float; peak_add : float; hold_s : float }

type srv = {
  sid : int;
  shard : int;
  sim : Sim.t;
  base_cpu : float;
  mem : float;
  spikes : spike array;
  rng : Rng.t;  (** private stream: flow-churn lifetimes *)
  mutable keep : float;  (** 1.0 until an offload activates *)
  mutable absorbed : (int * float) list;  (** (be server, demand share) as FE *)
  mutable over : bool;
  mutable episodes : int;
  mutable over_ticks : int;
  mutable ticks : int;
  mutable flow_expiries : int;
  mutable packets : float;
  vnics_modeled : int;
  flows_modeled : int;
  (* crash-storm state (shard-local; crash schedule frozen at setup) *)
  crash_times : float array;
  mutable down : bool;
  mutable incarnation : int;  (** bumped per crash; stamps re-advertisements *)
  mutable crashes : int;
  mutable restarts : int;
  mutable blackholed : int;
  mutable late_blackholed : int;
  mutable mttr : float list;  (** newest first; per-server, merged in sid order *)
}

(* Spike contribution at [now]: linear ramp up over [ramp], hold at the
   peak, symmetric ramp down.  Pure over the setup-frozen schedule, so
   an FE on another shard may evaluate its BE's demand without touching
   mutable state. *)
let spike_add spikes now =
  let acc = ref 0.0 in
  Array.iter
    (fun s ->
      let u = now -. s.t0 in
      if u > 0.0 then
        if u < s.ramp then acc := !acc +. (s.peak_add *. u /. s.ramp)
        else if u < s.ramp +. s.hold_s then acc := !acc +. s.peak_add
        else if u < (2.0 *. s.ramp) +. s.hold_s then
          acc := !acc +. (s.peak_add *. (1.0 -. ((u -. s.ramp -. s.hold_s) /. s.ramp))))
    spikes;
  !acc

let own_demand srv now = srv.base_cpu +. (spike_add srv.spikes now *. srv.keep)

let effective srvs srv now =
  List.fold_left
    (fun acc (be, share) -> acc +. (share *. spike_add srvs.(be).spikes now))
    (own_demand srv now) srv.absorbed

(* ------------------------------------------------------------------ *)

type ctl_state = No_offload | Pending | Active

type ctl = {
  sim : Sim.t;
  reported : float array;
  state : ctl_state array;
  reserved : bool array;
  fe_of : (int * float) list array;
      (** per FE server: the (BE, share) duties the controller intends
          for it — what a recovery re-push restores *)
  rngs : Rng.t array;  (** per-server decision streams: draws never
                           depend on report arrival interleaving *)
  mutable detections : int;
  mutable activations : int;
  mutable down : bool;  (** primary crashed, standby not yet up *)
  mutable takeovers : int;
  mutable pending_readverts : (int * int * float) list;
      (** (server, incarnation, crash time) arrived while down *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))
  end

let run cfg =
  if cfg.shards < 1 then invalid_arg "Region_sim.run: shards must be >= 1";
  if cfg.keep_share <= 0.0 || cfg.keep_share > 1.0 then
    invalid_arg "Region_sim.run: keep_share must be in (0, 1]";
  if cfg.ctl_latency <= 0.0 then invalid_arg "Region_sim.run: ctl_latency must be > 0";
  let n = cfg.racks * cfg.servers_per_rack in
  let topo = Topology.create ~racks:cfg.racks ~servers_per_rack:cfg.servers_per_rack in
  let cluster =
    Sim.Sharded.create ~capacity:4096 ~timer_tick:5e-3 ~timer_slots:512
      ~shards:cfg.shards ~lookahead:cfg.ctl_latency ()
  in
  let shard_of sid = Topology.rack_of topo sid mod cfg.shards in
  let ctl_sim = Sim.Sharded.shard cluster 0 in
  let fabric = Fabric.create ~sim:ctl_sim ~topology:topo in
  let setup_rng = Rng.create cfg.seed in
  let profiles = Region.sample_fleet setup_rng ~n in
  let hotspot_cut = Region.cps_demand_quantile cfg.hotspot_quantile in
  let params = Params.default in
  let hotspots = ref 0 in
  let srvs =
    Array.init n (fun sid ->
        let p = profiles.(sid) in
        let srng = Rng.create (cfg.seed lxor (0x9e3779b9 * (sid + 1))) in
        let spikes =
          if p.Region.cps <= hotspot_cut then [||]
          else begin
            incr hotspots;
            let k = Region.poisson srng cfg.spikes_per_day in
            Array.init k (fun _ ->
                let t0 = Rng.float srng cfg.duration in
                let ramp =
                  cfg.ramp_median *. Rng.lognormal srng ~mu:0.0 ~sigma:cfg.ramp_sigma
                in
                let peak = cfg.overload_level +. 0.05 +. Rng.float srng 0.25 in
                { t0; ramp; peak_add = peak -. p.Region.cpu; hold_s = cfg.hold })
          end
        in
        (* Crash schedule: frozen at setup from the same private stream
           (Poisson count, times inside the window that lets every
           recovery converge before the day ends). *)
        let crash_times =
          if cfg.crash_rate <= 0.0 then [||]
          else begin
            let k = Region.poisson srng cfg.crash_rate in
            let ts =
              Array.init k (fun _ ->
                  (0.05 *. cfg.duration) +. Rng.float srng (0.65 *. cfg.duration))
            in
            Array.sort compare ts;
            ts
          end
        in
        {
          sid;
          shard = shard_of sid;
          sim = Sim.Sharded.shard cluster (shard_of sid);
          base_cpu = p.Region.cpu;
          mem = p.Region.mem;
          spikes;
          rng = srng;
          keep = 1.0;
          absorbed = [];
          over = false;
          episodes = 0;
          over_ticks = 0;
          ticks = 0;
          flow_expiries = 0;
          packets = 0.0;
          vnics_modeled = 1 + int_of_float (p.Region.vnics *. 511.0);
          flows_modeled = int_of_float (p.Region.flows *. 1e6);
          crash_times;
          down = false;
          incarnation = 0;
          crashes = 0;
          restarts = 0;
          blackholed = 0;
          late_blackholed = 0;
          mttr = [];
        })
  in
  (* Every crash that can happen has finished recovering by this
     instant; blackholed ticks past it are a convergence failure. *)
  let convergence_deadline =
    let last =
      Array.fold_left
        (fun acc (s : srv) ->
          Array.fold_left (fun a t -> Float.max a t) acc s.crash_times)
        0.0 srvs
    in
    if last = 0.0 then 0.0
    else
      last +. cfg.reboot_delay +. cfg.resync_delay +. cfg.ctl_failover
      +. (4.0 *. cfg.ctl_latency) +. 0.5
  in
  (* Real vSwitch + SmartNIC per server, placed on its rack's shard; one
     concrete vNIC with a ruleset (memory admission included), with the
     remaining modeled vNICs reserved against SmartNIC memory. *)
  Array.iter
    (fun (srv : srv) ->
      let vs = Fabric.add_server fabric ~sim:srv.sim srv.sid ~params in
      let vnic =
        Vnic.make ~id:1
          ~vpc:(Vpc.make (srv.sid + 1))
          ~ip:(Ipv4.of_octets 10 (srv.sid lsr 16) ((srv.sid lsr 8) land 255) (srv.sid land 255))
          ~mac:(Mac.of_int64 (Int64.of_int (srv.sid + 1)))
      in
      let rs = Ruleset.create ~vni:(srv.sid + 1) () in
      (match Vswitch.add_vnic vs vnic rs with
      | Ok () -> ()
      | Error _ -> failwith "Region_sim: vNIC ruleset does not fit");
      ignore
        (Smartnic.mem_reserve (Vswitch.nic vs)
           ((srv.vnics_modeled - 1) * params.Params.be_residual_bytes_per_vnic)
          : bool))
    srvs;
  let ctl =
    {
      sim = ctl_sim;
      reported = Array.map (fun s -> s.base_cpu) srvs;
      state = Array.make n No_offload;
      reserved = Array.make n false;
      fe_of = Array.make n [];
      rngs =
        Array.init n (fun sid -> Rng.create (cfg.seed lxor (0x85ebca6b * (sid + 1))));
      detections = 0;
      activations = 0;
      down = false;
      takeovers = 0;
      pending_readverts = [];
    }
  in
  (* --- per-server demand ticks and flow churn ---------------------- *)
  let arm_periodic (srv : srv) ~offset ~period act_body =
    (* Tuned mode routes the re-arming through the timer wheel with one
       self-recursive closure; classic mode replicates the single-heap
       engine (fresh closure + heap push per firing). *)
    match cfg.engine with
    | Wheel_events ->
      let rec act sim =
        act_body sim;
        if Sim.now sim +. period <= cfg.duration then
          ignore (Sim.timeout sim ~delay:period act : Sim.timer)
      in
      ignore (Sim.timeout srv.sim ~delay:offset act : Sim.timer)
    | Heap_events ->
      let rec act sim =
        act_body sim;
        if Sim.now sim +. period <= cfg.duration then
          ignore (Sim.schedule sim ~delay:period (fun s -> act s) : Sim.handle)
      in
      ignore (Sim.schedule srv.sim ~delay:offset (fun s -> act s) : Sim.handle)
  in
  let pps_per_unit = 1e6 in
  Array.iter
    (fun (srv : srv) ->
      let tick_body sim =
        let now = Sim.now sim in
        srv.ticks <- srv.ticks + 1;
        if srv.down then begin
          (* Nobody home: the server's demand is blackholed, not served
             (and not an overload — there is no vSwitch to overload). *)
          srv.blackholed <- srv.blackholed + 1;
          if now > convergence_deadline then
            srv.late_blackholed <- srv.late_blackholed + 1;
          srv.over <- false
        end
        else begin
          let eff = effective srvs srv now in
          srv.packets <- srv.packets +. (eff *. pps_per_unit *. cfg.tick);
          if eff > cfg.overload_level then begin
            srv.over_ticks <- srv.over_ticks + 1;
            if not srv.over then begin
              srv.over <- true;
              srv.episodes <- srv.episodes + 1
            end
          end
          else srv.over <- false
        end
      in
      (* Stagger first ticks so 2,000 servers don't land on one instant. *)
      let offset = cfg.tick *. float_of_int (srv.sid mod 64) /. 64.0 in
      arm_periodic srv ~offset ~period:cfg.tick tick_body;
      (* Flow churn: [flow_timers] concurrent lifetimes, each re-arming
         with an exponential draw from the server's private stream. *)
      for _ = 1 to cfg.flow_timers do
        let delay0 = Rng.exponential srv.rng ~mean:cfg.flow_mean in
        match cfg.engine with
        | Wheel_events ->
          let rec act sim =
            srv.flow_expiries <- srv.flow_expiries + 1;
            let d = Rng.exponential srv.rng ~mean:cfg.flow_mean in
            if Sim.now sim +. d <= cfg.duration then
              ignore (Sim.timeout sim ~delay:d act : Sim.timer)
          in
          ignore (Sim.timeout srv.sim ~delay:delay0 act : Sim.timer)
        | Heap_events ->
          let rec act sim =
            srv.flow_expiries <- srv.flow_expiries + 1;
            let d = Rng.exponential srv.rng ~mean:cfg.flow_mean in
            if Sim.now sim +. d <= cfg.duration then
              ignore (Sim.schedule sim ~delay:d (fun s -> act s) : Sim.handle)
          in
          ignore (Sim.schedule srv.sim ~delay:delay0 (fun s -> act s) : Sim.handle)
      done;
      (* Utilization reports up to the controller shard (a crashed
         server reports nothing — the controller keeps the last one). *)
      Sim.every srv.sim ~period:cfg.report_interval (fun sim ->
          let now = Sim.now sim in
          if not srv.down then begin
            let eff = effective srvs srv now in
            Sim.Sharded.send sim ~dst:0 ~delay:cfg.ctl_latency (fun _ ->
                ctl.reported.(srv.sid) <- eff)
          end;
          now < cfg.duration))
    srvs;
  (* --- controller scan on shard 0 ---------------------------------- *)
  let all_servers = Topology.servers topo in
  let activation_delay sid =
    let p = profiles.(sid) in
    let state_bytes = 5.5e6 +. (p.Region.flows *. 94.5e6) in
    (2.0 *. cfg.rpc_rtt)
    +. (state_bytes /. cfg.push_bytes_per_s
        *. Rng.lognormal ctl.rngs.(sid) ~mu:0.0 ~sigma:0.35)
  in
  let scan () =
    for sid = 0 to n - 1 do
      if ctl.state.(sid) = No_offload && ctl.reported.(sid) >= cfg.offload_threshold
      then begin
        let fes =
          Placement.select
            ~eligible:(fun s ->
              s <> sid
              && ctl.state.(s) = No_offload
              && (not ctl.reserved.(s))
              && ctl.reported.(s) <= cfg.fe_cpu_max
              && srvs.(s).mem <= cfg.fe_mem_max)
            ~same_rack:(fun s -> Topology.same_rack topo s sid)
            ~cpu:(fun s -> ctl.reported.(s))
            ~count:cfg.num_fes all_servers
        in
        match fes with
        | [] -> () (* no idle capacity this scan; retry next period *)
        | fes ->
          ctl.state.(sid) <- Pending;
          ctl.detections <- ctl.detections + 1;
          List.iter (fun f -> ctl.reserved.(f) <- true) fes;
          let share = (1.0 -. cfg.keep_share) /. float_of_int (List.length fes) in
          ignore
            (Sim.schedule ctl.sim ~delay:(activation_delay sid) (fun csim ->
                 ctl.state.(sid) <- Active;
                 ctl.activations <- ctl.activations + 1;
                 Sim.Sharded.send csim ~dst:(shard_of sid) ~delay:cfg.ctl_latency
                   (fun _ -> srvs.(sid).keep <- cfg.keep_share);
                 List.iter
                   (fun f ->
                     ctl.fe_of.(f) <- (sid, share) :: ctl.fe_of.(f);
                     Sim.Sharded.send csim ~dst:(shard_of f) ~delay:cfg.ctl_latency
                       (fun _ -> srvs.(f).absorbed <- (sid, share) :: srvs.(f).absorbed))
                   fes)
              : Sim.handle)
      end
    done
  in
  Sim.every ctl_sim ~period:cfg.scan_interval (fun sim ->
      if cfg.nezha && not ctl.down then scan ();
      Sim.now sim < cfg.duration);
  (* --- crash storm (DESIGN.md §13) ---------------------------------- *)
  (* Reconciliation, controller side: a rebooted server re-advertises
     (stamped with its boot incarnation); after [resync_delay] the
     controller re-pushes its intent — BE keep-share and FE duties —
     which lands back on the owning shard.  The restore applies only if
     the server has not crashed again meanwhile (incarnation fence);
     the MTTR sample runs crash instant -> intent restored. *)
  let readvert sid inc t_crash =
    if ctl.down then
      ctl.pending_readverts <- (sid, inc, t_crash) :: ctl.pending_readverts
    else
      ignore
        (Sim.schedule ctl_sim ~delay:cfg.resync_delay (fun csim ->
             Sim.Sharded.send csim ~dst:(shard_of sid) ~delay:cfg.ctl_latency
               (fun ssim ->
                 let s = srvs.(sid) in
                 if (not s.down) && s.incarnation = inc then begin
                   (match ctl.state.(sid) with
                   | Active -> s.keep <- cfg.keep_share
                   | Pending | No_offload -> ());
                   s.absorbed <- ctl.fe_of.(sid);
                   s.mttr <- (Sim.now ssim -. t_crash) :: s.mttr
                 end))
          : Sim.handle)
  in
  (* Node side: at the (setup-frozen) crash instant the volatile state
     vanishes — keep-share and FE duties revert to boot defaults — and
     the process is gone for [reboot_delay]; on reboot it re-advertises
     up to the controller shard. *)
  let crash_event (srv : srv) sim =
    if not srv.down then begin
      let t_crash = Sim.now sim in
      srv.down <- true;
      srv.crashes <- srv.crashes + 1;
      srv.incarnation <- srv.incarnation + 1;
      let inc = srv.incarnation in
      srv.keep <- 1.0;
      srv.absorbed <- [];
      ignore
        (Sim.schedule sim ~delay:cfg.reboot_delay (fun ssim ->
             srv.down <- false;
             srv.restarts <- srv.restarts + 1;
             Sim.Sharded.send ssim ~dst:0 ~delay:cfg.ctl_latency (fun _ ->
                 readvert srv.sid inc t_crash))
          : Sim.handle)
    end
  in
  Array.iter
    (fun (srv : srv) ->
      Array.iter
        (fun tc ->
          ignore (Sim.schedule srv.sim ~delay:tc (fun sim -> crash_event srv sim)
                   : Sim.handle))
        srv.crash_times)
    srvs;
  (* Primary-controller crash: scans stop and re-advertisements queue
     until the standby takes over [ctl_failover] later; the drain is
     sorted by server id so the takeover is shard-count invariant. *)
  (match cfg.ctl_crash_at with
  | None -> ()
  | Some tca ->
    ignore
      (Sim.schedule ctl_sim ~delay:tca (fun _ -> ctl.down <- true) : Sim.handle);
    ignore
      (Sim.schedule ctl_sim ~delay:(tca +. cfg.ctl_failover) (fun _ ->
           ctl.down <- false;
           ctl.takeovers <- ctl.takeovers + 1;
           let q = List.sort compare ctl.pending_readverts in
           ctl.pending_readverts <- [];
           List.iter (fun (sid, inc, tc) -> readvert sid inc tc) q)
        : Sim.handle));
  (* --- run ---------------------------------------------------------- *)
  Sim.Sharded.run cluster ~until:cfg.duration;
  (* --- collect ------------------------------------------------------ *)
  let mix h x = (h * 1000003) lxor x in
  let digest = ref 17 in
  let ticks = ref 0
  and flow_expiries = ref 0
  and overloads = ref 0
  and over_ticks = ref 0
  and vnics = ref 0
  and flows = ref 0
  and packets = ref 0.0
  and crashes = ref 0
  and restarts = ref 0
  and blackholed = ref 0
  and late_blackholed = ref 0
  and mttr_samples = ref [] in
  Array.iter
    (fun (srv : srv) ->
      ticks := !ticks + srv.ticks;
      flow_expiries := !flow_expiries + srv.flow_expiries;
      overloads := !overloads + srv.episodes;
      over_ticks := !over_ticks + srv.over_ticks;
      vnics := !vnics + srv.vnics_modeled;
      flows := !flows + srv.flows_modeled;
      packets := !packets +. srv.packets;
      crashes := !crashes + srv.crashes;
      restarts := !restarts + srv.restarts;
      blackholed := !blackholed + srv.blackholed;
      late_blackholed := !late_blackholed + srv.late_blackholed;
      (* srv.mttr is newest-first; merged in sid order the global list
         is deterministic regardless of shard count. *)
      List.iter (fun m -> mttr_samples := m :: !mttr_samples) srv.mttr;
      digest := mix !digest srv.episodes;
      digest := mix !digest srv.over_ticks;
      digest := mix !digest srv.ticks;
      digest := mix !digest srv.flow_expiries;
      digest := mix !digest srv.crashes;
      digest := mix !digest (srv.restarts + srv.blackholed);
      List.iter
        (fun m ->
          digest :=
            mix !digest
              (Int64.to_int (Int64.logand (Int64.bits_of_float m) 0xffffffffL)))
        srv.mttr;
      digest :=
        mix !digest
          (Int64.to_int (Int64.logand (Int64.bits_of_float srv.packets) 0xffffffffL)))
    srvs;
  digest := mix !digest ctl.detections;
  digest := mix !digest ctl.activations;
  digest := mix !digest ctl.takeovers;
  let mttr_sorted =
    let a = Array.of_list !mttr_samples in
    Array.sort compare a;
    a
  in
  let reused, fresh =
    Array.fold_left
      (fun (r, f) i ->
        let ri, fi = Sim.pool_stats (Sim.Sharded.shard cluster i) in
        (r + ri, f + fi))
      (0, 0)
      (Array.init cfg.shards (fun i -> i))
  in
  {
    servers = n;
    vswitches = n;
    vnics_modeled = !vnics;
    flows_modeled = !flows;
    hotspots = !hotspots;
    events = Sim.Sharded.events_executed cluster;
    messages = Sim.Sharded.messages_delivered cluster;
    ticks = !ticks;
    flow_expiries = !flow_expiries;
    overloads = !overloads;
    overload_ticks = !over_ticks;
    detections = ctl.detections;
    activations = ctl.activations;
    packets_modeled = !packets;
    pool_reused = reused;
    pool_fresh = fresh;
    crashes = !crashes;
    restarts = !restarts;
    mttr_p50 = percentile mttr_sorted 0.50;
    mttr_p99 = percentile mttr_sorted 0.99;
    blackholed_ticks = !blackholed;
    late_blackholed = !late_blackholed;
    ctl_takeovers = ctl.takeovers;
    digest = !digest;
  }

(* Fig. 13/15 headline: the same seeded region run twice — controller
   off ("before") then on ("after").  Simulated, not closed-form: the
   "after" residue is exactly the spikes whose ramps beat activation. *)
type before_after = { before : result; after : result }

let before_after cfg =
  let before = run { cfg with nezha = false } in
  let after = run { cfg with nezha = true } in
  { before; after }

(* ------------------------------------------------------------------ *)
(* SLO-tracking run (ROADMAP item 4): a diurnal offered-load ramp (×10
   trough->peak) served by an elastic FE pool whose size is driven by
   the real {!Nezha_core.Slo} decision core over a modeled remote-hop
   P99, with FE placement through the real power-of-two-choices policy
   ({!Placement.select_p2c}).  The latency model is the standard
   queueing shape — hop P99 grows as util/(1-util) on the pool's
   per-FE utilization — so holding the latency budget *requires* the
   pool to track the ramp in both directions.

   The chaos variant cuts the BE rack's uplink for a window: every
   cross-rack pool member turns suspect at once and half the serving
   capacity vanishes.  The observed P99 explodes, which is exactly the
   bait — a naive loop would scale out into the partition and then mass
   scale-in after the heal.  The §C.2 suppression window must keep the
   pool size frozen instead ([pool_moves_in_partition] = 0).

   Deterministic by construction: one seeded rng, one synchronous tick
   loop, no wall clock. *)

module Slo = Nezha_core.Slo

type slo_config = {
  slo_seed : int;
  slo_duration : float;  (** one compressed "day", sim seconds *)
  slo_tick : float;  (** report/decision period *)
  slo_racks : int;
  slo_servers_per_rack : int;
  base_offered : float;  (** trough offered load, FE-capacity units *)
  ramp_ratio : float;  (** peak/trough offered ratio (×10) *)
  fe_capacity : float;  (** offered units one FE serves at util 1.0 *)
  base_hop : float;  (** remote-hop latency at zero utilization, s *)
  hop_noise_sigma : float;  (** lognormal sigma on the observed P99 *)
  slo : Slo.config;  (** the decision core's knobs *)
  flap_window : float;  (** reversal horizon for oscillation counting *)
  slo_partition : (float * float) option;  (** chaos: (start, duration) *)
}

let default_slo_config =
  {
    slo_seed = 42;
    slo_duration = 600.0;
    slo_tick = 1.0;
    slo_racks = 6;
    slo_servers_per_rack = 16;
    base_offered = 1.6;
    ramp_ratio = 10.0;
    fe_capacity = 1.0;
    base_hop = 0.001;
    hop_noise_sigma = 0.04;
    slo =
      {
        Slo.target_p99 = 0.005;
        band = 0.30;
        cooldown = 5.0;
        warmup = 5.0;
        min_pool = 4;
        max_pool = 48;
        max_step = 1;
        suppress_fraction = 0.15;
        suppress_hold = 20.0;
      };
    flap_window = 45.0;
    slo_partition = None;
  }

type slo_result = {
  slo_ticks : int;
  offered_ratio : float;  (** max/min offered actually swept *)
  pool_min : int;
  pool_max : int;
  pool_at_peak : int;  (** pool size at the middle of the hold phase *)
  pool_at_end : int;
  p99_peak : float;
  within_budget_fraction : float;
      (** post-warmup ticks with P99 <= target×(1+band) *)
  slo_scale_outs : int;
  slo_scale_ins : int;
  oscillations : int;
      (** direction reversals within [flap_window] of each other *)
  slo_suppressed_ticks : int;
  partition_suspects_max : int;
  pool_moves_in_partition : int;  (** must be 0: no flapping under §C.2 *)
  slo_digest : int;
}

(* Diurnal shape on [0,1]: smooth ramp up over the first 35%, hold the
   peak for 25%, symmetric ramp down, then trough. *)
let diurnal u =
  let smoothstep x = x *. x *. (3.0 -. (2.0 *. x)) in
  if u < 0.35 then smoothstep (u /. 0.35)
  else if u < 0.60 then 1.0
  else if u < 0.95 then smoothstep ((0.95 -. u) /. 0.35)
  else 0.0

let run_slo cfg =
  if cfg.ramp_ratio < 1.0 then invalid_arg "Region_sim.run_slo: ramp_ratio < 1";
  if cfg.slo_tick <= 0.0 then invalid_arg "Region_sim.run_slo: tick <= 0";
  let n = cfg.slo_racks * cfg.slo_servers_per_rack in
  let rng = Rng.create cfg.slo_seed in
  let rack_of sid = sid / cfg.slo_servers_per_rack in
  let be = 0 in
  let be_rack = rack_of be in
  let in_pool = Array.make n false in
  (* Static background load per server — the diversity the p2c draws
     discriminate on. *)
  let jitter = Array.init n (fun _ -> Rng.float rng 0.05) in
  let slo = Slo.create ~config:cfg.slo ~now:0.0 () in
  let pool_size = ref 0 in
  let members () =
    let acc = ref [] in
    for sid = n - 1 downto 0 do
      if in_pool.(sid) then acc := sid :: !acc
    done;
    !acc
  in
  (* The chaos partition severs the BE rack's ToR uplink: every pool
     member OUTSIDE the BE's rack is unreachable (suspect, serving
     nothing) until the heal. *)
  let partition_active now =
    match cfg.slo_partition with
    | Some (t0, d) -> now >= t0 && now < t0 +. d
    | None -> false
  in
  let cut now sid = partition_active now && rack_of sid <> be_rack in
  let util = ref 0.0 in
  let load sid = if in_pool.(sid) then !util +. jitter.(sid) else jitter.(sid) in
  let grow now count =
    let picked =
      Placement.select_p2c ~rng
        ~eligible:(fun sid -> sid <> be && not in_pool.(sid))
        ~same_rack:(fun sid -> rack_of sid = be_rack)
        ~load
        ~suspect:(fun sid -> cut now sid)
        ~count
        (List.init n (fun sid -> sid))
    in
    List.iter (fun sid -> in_pool.(sid) <- true) picked;
    pool_size := !pool_size + List.length picked;
    List.length picked
  in
  let shrink _now count =
    (* Mirror the controller's victim ranking: cross-rack first, then
       the highest background load. *)
    let ranked =
      List.sort
        (fun a b ->
          let rack s = if rack_of s = be_rack then 1 else 0 in
          match compare (rack a) (rack b) with
          | 0 -> Float.compare (load b) (load a)
          | c -> c)
        (members ())
    in
    let victims = Placement.take count ranked in
    List.iter (fun sid -> in_pool.(sid) <- false) victims;
    pool_size := !pool_size - List.length victims;
    List.length victims
  in
  ignore (grow 0.0 cfg.slo.Slo.min_pool : int);
  let hop_p99 u =
    cfg.base_hop
    *. (1.0 +. (2.0 *. u /. Float.max 0.03 (1.0 -. Float.min u 0.97)))
  in
  let budget = cfg.slo.Slo.target_p99 *. (1.0 +. cfg.slo.Slo.band) in
  let ticks = int_of_float (cfg.slo_duration /. cfg.slo_tick) in
  let mix h x = (h * 1000003) lxor x in
  let f32 x = Int64.to_int (Int64.logand (Int64.bits_of_float x) 0xffffffffL) in
  let digest = ref 17 in
  let pool_min = ref max_int
  and pool_max = ref 0
  and pool_at_peak = ref 0
  and p99_peak = ref 0.0
  and within = ref 0
  and judged = ref 0
  and oscillations = ref 0
  and suspects_max = ref 0
  and moves_in_partition = ref 0
  and last_dir = ref 0
  and last_dir_t = ref neg_infinity
  and offered_min = ref infinity
  and offered_max = ref 0.0 in
  let peak_tick = int_of_float (0.475 *. float_of_int ticks) in
  for i = 0 to ticks - 1 do
    let now = float_of_int i *. cfg.slo_tick in
    let offered =
      cfg.base_offered
      *. (1.0 +. ((cfg.ramp_ratio -. 1.0) *. diurnal (now /. cfg.slo_duration)))
    in
    offered_min := Float.min !offered_min offered;
    offered_max := Float.max !offered_max offered;
    let ms = members () in
    let suspects = List.length (List.filter (cut now) ms) in
    suspects_max := max !suspects_max suspects;
    let effective = max 1 (List.length ms - suspects) in
    util := offered /. (float_of_int effective *. cfg.fe_capacity);
    let p99 =
      hop_p99 !util *. Rng.lognormal rng ~mu:0.0 ~sigma:cfg.hop_noise_sigma
    in
    p99_peak := Float.max !p99_peak p99;
    if now >= cfg.slo.Slo.warmup then begin
      incr judged;
      if p99 <= budget then incr within
    end;
    let pool = !pool_size in
    let dir =
      match Slo.observe slo ~now ~p99:(Some p99) ~pool ~suspects with
      | Slo.Scale_out add -> if grow now add > 0 then 1 else 0
      | Slo.Scale_in remove -> if shrink now remove > 0 then -1 else 0
      | Slo.Hold _ -> 0
    in
    if dir <> 0 then begin
      if partition_active now then incr moves_in_partition;
      if !last_dir <> 0 && dir <> !last_dir && now -. !last_dir_t <= cfg.flap_window
      then incr oscillations;
      last_dir := dir;
      last_dir_t := now
    end;
    pool_min := min !pool_min !pool_size;
    pool_max := max !pool_max !pool_size;
    if i = peak_tick then pool_at_peak := !pool_size;
    digest := mix !digest !pool_size;
    digest := mix !digest (f32 p99);
    digest := mix !digest dir
  done;
  digest := mix !digest (Slo.scale_outs slo);
  digest := mix !digest (Slo.scale_ins slo);
  {
    slo_ticks = ticks;
    offered_ratio = !offered_max /. Float.max 1e-9 !offered_min;
    pool_min = !pool_min;
    pool_max = !pool_max;
    pool_at_peak = !pool_at_peak;
    pool_at_end = !pool_size;
    p99_peak = !p99_peak;
    within_budget_fraction =
      (if !judged = 0 then 1.0 else float_of_int !within /. float_of_int !judged);
    slo_scale_outs = Slo.scale_outs slo;
    slo_scale_ins = Slo.scale_ins slo;
    oscillations = !oscillations;
    slo_suppressed_ticks = Slo.suppressed_ticks slo;
    partition_suspects_max = !suspects_max;
    pool_moves_in_partition = !moves_in_partition;
    slo_digest = !digest;
  }
