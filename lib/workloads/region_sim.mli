(** Region-scale event-simulated overload study (Fig. 13/15 headline).

    Instantiates thousands of {e real} vSwitches — one per server, with
    a SmartNIC, a vNIC and a ruleset admitted against NIC memory — on a
    {!Nezha_engine.Sim.Sharded} cluster, rack-aligned onto shards.
    Demand comes from {!Region.sample_fleet} profiles; the top CPS
    fraction are hotspots that receive Poisson-many demand spikes over
    one compressed "day".  A fleet controller on shard 0 receives
    utilization reports, runs the shared {!Nezha_core.Placement} policy
    and pushes offload activations back; an overload is {e counted only
    when it happens in the simulation} — i.e. the spike's ramp crosses
    the overload level before report → detect → place → state-push →
    activate completes.  This replaces the closed-form
    {!Region.daily_overloads} race model with a measured one.

    Determinism: for a fixed seed the result {!result.digest} is
    identical for any shard count (all cross-shard interaction is
    control-plane traffic with delay = [ctl_latency] = the cluster
    lookahead; everything else is shard-local — see DESIGN.md §10). *)

(** Event-scheduling mode, the benchmark contrast of [bench macro]:
    [Heap_events] replicates the classic engine (a fresh closure pushed
    through the binary heap for every firing); [Wheel_events] is the
    tuned path (timer-wheel re-arming, pooled event records). *)
type engine = Heap_events | Wheel_events

type config = {
  racks : int;
  servers_per_rack : int;
  shards : int;
  engine : engine;
  seed : int;
  duration : float;  (** one compressed "day", sim seconds *)
  tick : float;  (** demand-evaluation period per server *)
  flow_timers : int;  (** sampled live-flow churn timers per server *)
  flow_mean : float;  (** mean flow lifetime driving churn *)
  nezha : bool;  (** controller acts (false = "before" run) *)
  report_interval : float;
  scan_interval : float;
  ctl_latency : float;  (** control-plane RPC latency = cluster lookahead *)
  num_fes : int;
  keep_share : float;  (** demand share the BE keeps once offloaded *)
  offload_threshold : float;
  overload_level : float;
  fe_cpu_max : float;
  fe_mem_max : float;
  hotspot_quantile : float;  (** CPS quantile above which spikes occur *)
  spikes_per_day : float;  (** Poisson mean per hotspot (Fig. 13) *)
  ramp_median : float;  (** compressed spike ramp median, seconds *)
  ramp_sigma : float;
  hold : float;  (** time a spike holds its peak *)
  push_bytes_per_s : float;  (** rule/state push bandwidth (§4.2.1) *)
  rpc_rtt : float;
  crash_rate : float;
      (** crash-storm chaos (DESIGN.md §13): Poisson mean server crashes
          per compressed day, schedule frozen at setup (0 = off) *)
  reboot_delay : float;  (** crash -> process back up *)
  resync_delay : float;  (** controller re-push latency on re-advertisement *)
  ctl_crash_at : float option;  (** primary-controller crash instant *)
  ctl_failover : float;  (** lease expiry -> standby takeover delay *)
}

val default_config : config
(** 250 racks x 8 servers = 2,000 vSwitches, 8 shards, tuned engine,
    30 s compressed day. *)

type result = {
  servers : int;
  vswitches : int;
  vnics_modeled : int;
  flows_modeled : int;
  hotspots : int;
  events : int;  (** simulation events executed, cluster-wide *)
  messages : int;  (** cross-shard mailbox deliveries *)
  ticks : int;
  flow_expiries : int;
  overloads : int;  (** overload episodes (Fig. 13 occurrences) *)
  overload_ticks : int;
  detections : int;
  activations : int;
  packets_modeled : float;  (** demand-rate x time packet proxy *)
  pool_reused : int;
  pool_fresh : int;
  crashes : int;  (** server crash events executed (storm) *)
  restarts : int;  (** reboot completions *)
  mttr_p50 : float;
      (** crash instant -> controller intent fully restored on the
          rebooted node, seconds *)
  mttr_p99 : float;
  blackholed_ticks : int;
      (** demand ticks evaluated while the server was down *)
  late_blackholed : int;
      (** blackholed ticks after every scheduled recovery should have
          converged — a correct run reports 0 *)
  ctl_takeovers : int;  (** standby takeovers after a primary crash *)
  digest : int;  (** order-insensitive run fingerprint; equal across
                     shard counts for a fixed seed and config *)
}

val run : config -> result

type before_after = { before : result; after : result }

val before_after : config -> before_after
(** The same seeded region, controller off then on.  Both runs schedule
    the identical report/scan cadence (the "before" scan is a no-op), so
    event counts stay comparable. *)

(** {1 SLO-tracking run (ROADMAP item 4)}

    A diurnal offered-load ramp (×[ramp_ratio] trough→peak) served by an
    elastic FE pool sized by the {e real} {!Nezha_core.Slo} decision
    core over a modeled remote-hop P99, with placement through the real
    power-of-two-choices policy ({!Nezha_core.Placement.select_p2c}).
    Hop P99 grows as util/(1−util) on per-FE utilization, so holding
    the budget requires the pool to track the ramp in both directions.

    The chaos variant ([slo_partition]) severs the BE rack's uplink for
    a window: every cross-rack pool member turns suspect at once and
    its capacity vanishes — observed P99 explodes, which is the bait.
    The §C.2 suppression window must freeze the pool instead:
    [pool_moves_in_partition] = 0 is the no-flapping gate. *)

module Slo = Nezha_core.Slo

type slo_config = {
  slo_seed : int;
  slo_duration : float;  (** one compressed "day", sim seconds *)
  slo_tick : float;  (** report/decision period *)
  slo_racks : int;
  slo_servers_per_rack : int;
  base_offered : float;  (** trough offered load, FE-capacity units *)
  ramp_ratio : float;  (** peak/trough offered ratio (×10) *)
  fe_capacity : float;  (** offered units one FE serves at util 1.0 *)
  base_hop : float;  (** remote-hop latency at zero utilization, s *)
  hop_noise_sigma : float;  (** lognormal sigma on the observed P99 *)
  slo : Slo.config;  (** the decision core's knobs *)
  flap_window : float;  (** reversal horizon for oscillation counting *)
  slo_partition : (float * float) option;  (** chaos: (start, duration) *)
}

val default_slo_config : slo_config
(** 96 servers in 6 racks, 600 s day, ×10 ramp, 5 ms target P99 with a
    30% hysteresis band, pool 4..48, no partition. *)

type slo_result = {
  slo_ticks : int;
  offered_ratio : float;  (** max/min offered actually swept *)
  pool_min : int;
  pool_max : int;
  pool_at_peak : int;  (** pool size at the middle of the hold phase *)
  pool_at_end : int;
  p99_peak : float;
  within_budget_fraction : float;
      (** post-warmup ticks with P99 <= target×(1+band) *)
  slo_scale_outs : int;
  slo_scale_ins : int;
  oscillations : int;
      (** direction reversals within [flap_window] of each other *)
  slo_suppressed_ticks : int;
  partition_suspects_max : int;
  pool_moves_in_partition : int;  (** must be 0: no flapping under §C.2 *)
  slo_digest : int;  (** per-tick fingerprint (pool, P99, decision) *)
}

val run_slo : slo_config -> slo_result
